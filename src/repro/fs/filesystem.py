"""A multi-file outsourced file system with outsourced master keys.

This is the deployment shape Section V describes: many files, each with
its own modulation tree and master key; the master keys live in meta
modulation trees on the server; the client keeps one control key per
*group* of files.  Groups default to the first path component of the
file name (a directory), mirroring the paper's "divide the master keys of
all files into groups based on the directory structure".

Every data-plane byte and hash flows through the same metered client as
the single-file scheme, so file-system operations show up in the metrics
with their full two-level cost.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.client.client import AssuredDeletionClient
from repro.core.errors import ReproError, UnknownItemError
from repro.core.meta import MetaKeyManager
from repro.core.params import Params
from repro.crypto.rng import RandomSource, SystemRandom
from repro.fs.indexing import ItemIndex, Located
from repro.obs import runtime as obs
from repro.obs.trace import span
from repro.protocol.channel import Channel, LoopbackChannel
from repro.server.server import CloudServer
from repro.sim.metrics import MetricsCollector


def _traced_fs(op: str):
    """Wrap a file-level operation in a span named ``fs.<op>``.

    The span carries the file name, so a two-level operation (data tree
    plus meta tree) shows up as one ``fs.*`` root over its ``client.*``
    and ``rpc.request`` children.  No-op while observability is off.
    """
    def decorate(fn):
        name = "fs." + op

        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            if not obs.enabled:
                return fn(self, *args, **kwargs)
            with span(name, file=self.name):
                return fn(self, *args, **kwargs)
        return wrapper
    return decorate


def directory_group(name: str) -> str:
    """Default grouping policy: the first path component."""
    name = name.strip("/")
    if "/" in name:
        return name.split("/", 1)[0]
    return ""


@dataclass
class FileRecord:
    """Client-side bookkeeping for one outsourced file."""

    name: str
    file_id: int
    group: str
    index: ItemIndex = field(default_factory=ItemIndex)


class OutsourcedFile:
    """Handle for record-level operations on one outsourced file."""

    def __init__(self, fs: "OutsourcedFileSystem", record: FileRecord) -> None:
        self._fs = fs
        self._record = record

    @property
    def name(self) -> str:
        return self._record.name

    @property
    def file_id(self) -> int:
        return self._record.file_id

    @property
    def record_count(self) -> int:
        return len(self._record.index)

    @property
    def size_bytes(self) -> int:
        return self._record.index.total_size

    def _meta(self) -> MetaKeyManager:
        return self._fs._group_manager(self._record.group)

    @_traced_fs("read_record")
    def read_record(self, position: int) -> bytes:
        """Read the record at logical ``position``."""
        item_id = self._record.index.item_id_at(position)
        key = self._meta().master_key(self._record.file_id)
        return self._fs.client.access(self._record.file_id, key, item_id)

    @_traced_fs("write_record")
    def write_record(self, position: int, data: bytes) -> None:
        """Replace the record at logical ``position`` (same data key)."""
        item_id = self._record.index.item_id_at(position)
        key = self._meta().master_key(self._record.file_id)
        self._fs.client.modify(self._record.file_id, key, item_id, data)
        self._record.index.update_size(position, len(data))

    @_traced_fs("insert_record")
    def insert_record(self, position: int, data: bytes) -> int:
        """Insert a new record before logical ``position``; returns its id."""
        key = self._meta().master_key(self._record.file_id)
        item_id = self._fs.client.insert(self._record.file_id, key, data)
        self._record.index.insert(position, item_id, len(data))
        return item_id

    def append_record(self, data: bytes) -> int:
        """Append a record at the end of the file; returns its id."""
        return self.insert_record(len(self._record.index), data)

    @_traced_fs("delete_record")
    def delete_record(self, position: int) -> None:
        """Assuredly delete the record at logical ``position``.

        Two steps, as Section V prescribes: delete the item's data key
        from the file's modulation tree (rotating the file's master key),
        then assuredly replace the master key in the meta tree.
        """
        item_id = self._record.index.item_id_at(position)
        meta = self._meta()
        key = meta.master_key(self._record.file_id)
        new_key = self._fs.client.delete(self._record.file_id, key, item_id)
        meta.replace_master_key(self._record.file_id, new_key)
        self._record.index.remove(position)

    @_traced_fs("resume_delete_many")
    def resume_delete_many(self, positions: Sequence[int]) -> None:
        """Finalise a batched deletion whose commit raised or lost its Ack.

        Replays the client's journalled commit byte-for-byte (the server
        answers from its replay cache if it already applied it), then
        performs the meta-tree master-key replacement and index removal
        that the failed :meth:`delete_many` never reached.  Per-shard
        recovery for a cross-shard fan-out: each file resumes against
        its own shard independently.
        """
        positions = list(positions)
        item_ids = [self._record.index.item_id_at(position)
                    for position in positions]
        meta = self._meta()
        new_key = self._fs.client.resume_delete_many(self._record.file_id,
                                                     item_ids)
        meta.replace_master_key(self._record.file_id, new_key)
        for position in sorted(positions, reverse=True):
            self._record.index.remove(position)

    @_traced_fs("delete_many")
    def delete_many(self, positions: Sequence[int]) -> None:
        """Assuredly delete the records at several logical positions.

        One batched exchange replaces per-record deletions: the file's
        master key rotates once and the meta tree is updated once, so a
        retention sweep over a file costs one round-trip pair end to end.
        """
        positions = list(positions)
        if not positions:
            return
        if len(set(positions)) != len(positions):
            raise ReproError("positions must be distinct")
        item_ids = [self._record.index.item_id_at(position)
                    for position in positions]
        meta = self._meta()
        key = meta.master_key(self._record.file_id)
        new_key = self._fs.client.delete_many(self._record.file_id, key,
                                              item_ids)
        meta.replace_master_key(self._record.file_id, new_key)
        # Remove positions highest-first so earlier removals don't shift
        # the later ones.
        for position in sorted(positions, reverse=True):
            self._record.index.remove(position)

    def locate(self, offset: int) -> Located:
        """Resolve a byte offset to its record (paper footnote 2)."""
        return self._record.index.locate(offset)

    def read_at(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes starting at byte ``offset``."""
        if length < 0:
            raise ValueError("length must be non-negative")
        pieces = []
        remaining = length
        while remaining > 0:
            try:
                located = self.locate(offset)
            except IndexError:
                break  # reading past end-of-file returns a short result
            data = self.read_record(located.position)
            chunk = data[located.offset_in_item:
                         located.offset_in_item + remaining]
            if not chunk:
                break
            pieces.append(chunk)
            offset += len(chunk)
            remaining -= len(chunk)
        return b"".join(pieces)

    def delete_at(self, offset: int) -> None:
        """Assuredly delete the record containing byte ``offset``."""
        self.delete_record(self.locate(offset).position)

    @_traced_fs("read_all")
    def read_all(self) -> list[bytes]:
        """Fetch the whole file, in logical record order."""
        key = self._meta().master_key(self._record.file_id)
        by_id = self._fs.client.fetch_file(self._record.file_id, key)
        return [by_id[item_id] for item_id, _size in
                self._record.index.records()]


class OutsourcedFileSystem:
    """Named files over one cloud server, with grouped control keys."""

    #: Meta files occupy ids below this; data files above it.
    _DATA_FILE_BASE = 1_000_000

    def __init__(self, channel: Channel | None = None,
                 params: Params | None = None,
                 rng: RandomSource | None = None,
                 metrics: MetricsCollector | None = None,
                 group_of: Callable[[str], str] = directory_group,
                 meta_id_base: int = 1,
                 file_id_base: int | None = None) -> None:
        """``meta_id_base``/``file_id_base`` partition the server's file-id
        space between tenants: several OutsourcedFileSystems sharing one
        server (the concurrency stress harness, a multi-client deployment)
        pass disjoint bases so their meta and data trees never collide."""
        self.params = params if params is not None else Params()
        if channel is None:
            self.server: Optional[CloudServer] = CloudServer(self.params)
            channel = LoopbackChannel(self.server)
        else:
            self.server = None
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.client = AssuredDeletionClient(
            channel, self.params,
            rng=rng if rng is not None else SystemRandom(),
            metrics=self.metrics, store_keys=False)
        self._group_of = group_of
        self._groups: dict[str, MetaKeyManager] = {}
        self._files: dict[str, FileRecord] = {}
        if file_id_base is None:
            file_id_base = self._DATA_FILE_BASE
        if not 1 <= meta_id_base < file_id_base:
            raise ReproError("meta_id_base must be >= 1 and below "
                             "file_id_base")
        self._next_meta_id = meta_id_base
        self._next_file_id = file_id_base

    @classmethod
    def connect(cls, address: tuple[str, int],
                params: Params | None = None,
                rng: RandomSource | None = None,
                metrics: MetricsCollector | None = None,
                group_of: Callable[[str], str] = directory_group,
                retry: "RetryPolicy | None" = None) -> "OutsourcedFileSystem":
        """Open a file system against a remote TCP server.

        ``retry`` configures the transport's per-request timeout and
        exponential-backoff retransmits (safe: mutating requests carry
        idempotent request ids the server dedupes on).
        """
        from repro.protocol.tcp import RetryPolicy, TcpChannel
        from repro.protocol.wire import WireContext
        params = params if params is not None else Params()
        channel = TcpChannel(
            address, WireContext(modulator_width=params.modulator_size),
            retry=retry if retry is not None else RetryPolicy())
        return cls(channel, params=params, rng=rng, metrics=metrics,
                   group_of=group_of)

    @classmethod
    def connect_sharded(cls, addresses: Sequence[tuple[str, int]],
                        transport: str = "tcp",
                        params: Params | None = None,
                        rng: RandomSource | None = None,
                        metrics: MetricsCollector | None = None,
                        group_of: Callable[[str], str] = directory_group,
                        retry: "RetryPolicy | None" = None,
                        vnodes: int | None = None,
                        meta_id_base: int = 1,
                        file_id_base: int | None = None,
                        ) -> "OutsourcedFileSystem":
        """Open a file system against a sharded serving tier.

        ``addresses`` lists one host per shard, indexed by shard id (the
        order ``serve --shards N`` prints them).  Every file resolves to
        its shard transparently through the consistent-hash ring; the
        client sees one logical server.  ``meta_id_base``/
        ``file_id_base`` partition the id space exactly as in the
        constructor (several clients sharing one cluster pass disjoint
        bases).
        """
        from repro.fs.sharding import (DEFAULT_VNODES, ShardMap,
                                       ShardRoutingChannel)
        from repro.protocol.wire import WireContext
        params = params if params is not None else Params()
        ctx = WireContext(modulator_width=params.modulator_size)
        vnodes = vnodes if vnodes is not None else DEFAULT_VNODES
        if transport == "tcp":
            shard_map = ShardMap.tcp(addresses, ctx, retry=retry,
                                     vnodes=vnodes)
        elif transport == "async":
            shard_map = ShardMap.async_tcp(addresses, ctx, vnodes=vnodes)
        else:
            raise ReproError(f"unknown shard transport {transport!r}")
        return cls(ShardRoutingChannel(shard_map), params=params, rng=rng,
                   metrics=metrics, group_of=group_of,
                   meta_id_base=meta_id_base, file_id_base=file_id_base)

    # ------------------------------------------------------------------
    # Sharding
    # ------------------------------------------------------------------

    @property
    def router(self):
        """The routing channel, or ``None`` against a single server."""
        from repro.fs.sharding import ShardRoutingChannel
        channel = self.client.channel
        return channel if isinstance(channel, ShardRoutingChannel) else None

    def shard_of(self, name: str) -> Optional[int]:
        """Which shard holds ``name``'s data tree (``None`` unsharded)."""
        record = self._files.get(name)
        if record is None:
            raise UnknownItemError(f"no such file {name!r}")
        router = self.router
        return None if router is None else router.shard_of(record.file_id)

    def delete_records(self, batches: Mapping[str, Sequence[int]]) -> dict:
        """Assuredly delete records from several files in one fan-out.

        ``batches`` maps file names to logical positions.  Files are
        grouped by owning shard and each file's deletion commits
        atomically against its own shard (one batched two-phase
        exchange + one meta-tree key replacement); shard groups execute
        in deterministic order (shard id, then name) and the replies are
        merged into ``{shard_id: ShardOutcome}``.

        A partial failure raises :class:`ShardFanoutError` carrying the
        per-shard outcomes: committed files stay committed (per-shard
        atomicity), and each failed file recovers independently through
        the client's deletion journal
        (:meth:`OutsourcedFile.resume_delete_many`) once its shard is
        reachable again.
        """
        from repro.fs.sharding import ShardFanoutError, ShardOutcome
        plan: dict[Optional[int], list[tuple[str, list[int]]]] = {}
        for name, positions in batches.items():
            if name not in self._files:
                raise UnknownItemError(f"no such file {name!r}")
            plan.setdefault(self.shard_of(name), []).append(
                (name, list(positions)))
        outcomes: dict[Optional[int], ShardOutcome] = {}
        failed = False
        order = sorted(plan, key=lambda s: -1 if s is None else s)
        for shard_id in order:
            outcome = ShardOutcome(shard_id=shard_id)
            for name, positions in sorted(plan[shard_id]):
                try:
                    self.open(name).delete_many(positions)
                except Exception as exc:
                    outcome.failed[name] = \
                        f"{type(exc).__name__}: {exc}"
                    failed = True
                else:
                    outcome.committed.append(name)
            outcomes[shard_id] = outcome
        if failed:
            raise ShardFanoutError(outcomes)
        return outcomes

    # ------------------------------------------------------------------
    # Groups
    # ------------------------------------------------------------------

    def _group_manager(self, group: str) -> MetaKeyManager:
        manager = self._groups.get(group)
        if manager is None:
            meta_id = self._next_meta_id
            self._next_meta_id += 1
            manager = MetaKeyManager(self.client, meta_id,
                                     control_key_name=f"control:{group}")
            manager.initialize()
            self._groups[group] = manager
        return manager

    def group_manager_of(self, name: str) -> MetaKeyManager:
        """The meta-key manager holding ``name``'s master key."""
        record = self._files.get(name)
        group = record.group if record is not None else self._group_of(name)
        return self._group_manager(group)

    def control_key_count(self) -> int:
        """How many keys the client actually stores (Section V's point)."""
        return len(self._groups)

    def client_key_bytes(self) -> int:
        """Total client key storage in bytes."""
        return self.client.keystore.key_bytes_stored()

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------

    def create_file(self, name: str,
                    records: Sequence[bytes] = ()) -> OutsourcedFile:
        """Outsource ``records`` as a new named file."""
        if not obs.enabled:
            return self._create_file(name, records)
        with span("fs.create_file", file=name, records=len(records)):
            return self._create_file(name, records)

    def _create_file(self, name: str,
                     records: Sequence[bytes]) -> OutsourcedFile:
        if name in self._files:
            raise ReproError(f"file {name!r} already exists")
        group = self._group_of(name)
        manager = self._group_manager(group)

        file_id = self._next_file_id
        self._next_file_id += 1
        master_key = self.client.outsource(file_id, list(records))
        item_ids = self.client.item_ids_of(len(records))
        manager.register(file_id, master_key)

        record = FileRecord(name=name, file_id=file_id, group=group)
        for item_id, data in zip(item_ids, records):
            record.index.append(item_id, len(data))
        self._files[name] = record
        return OutsourcedFile(self, record)

    def open(self, name: str) -> OutsourcedFile:
        record = self._files.get(name)
        if record is None:
            raise UnknownItemError(f"no such file {name!r}")
        return OutsourcedFile(self, record)

    def exists(self, name: str) -> bool:
        return name in self._files

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def delete_file(self, name: str) -> None:
        """Assured whole-file deletion: shred its master key in the meta tree."""
        if not obs.enabled:
            return self._delete_file(name)
        with span("fs.delete_file", file=name):
            return self._delete_file(name)

    def _delete_file(self, name: str) -> None:
        record = self._files.pop(name, None)
        if record is None:
            raise UnknownItemError(f"no such file {name!r}")
        self._group_manager(record.group).remove(record.file_id)
        self.client.delete_file_state(record.file_id)

"""Consistent-hash sharding: route each file to one of N servers.

The paper's two-party protocol is strictly per-file: every request
carries a ``file_id`` and touches exactly one modulation tree, so a
deployment scales horizontally by hashing file ids onto independent
server instances -- each shard owning its own :class:`CloudServer`,
write-ahead log, checkpoint image, lock table, and replay caches.  This
module supplies the routing layer:

* :class:`HashRing` -- consistent hashing with virtual nodes.  Each
  shard contributes ``vnodes`` points on a 64-bit ring (SHA-256 of a
  canonical label, so placement is identical across processes and
  runs); a file id hashes to a point and is owned by the next shard
  point clockwise.  Adding or removing one shard moves only the keys
  adjacent to its points (~1/N of the space), never reshuffles the rest.
* :class:`ShardMap` -- the small routing interface: a ring plus a
  channel factory saying how to reach each shard (in-process loopback,
  sync TCP, or the pipelined async host).  Every call to
  :meth:`ShardMap.make_channel` opens a *fresh* channel, so several
  clients can share one map without sharing sockets or counters.
* :class:`ShardRoutingChannel` -- a drop-in :class:`Channel` that
  resolves ``message.file_id`` through the ring and forwards to the
  owning shard's channel (opened lazily, one per shard).  All per-shard
  sub-channels share the router's :class:`ChannelCounters` object, so
  client-side metering and the paper's overhead accounting keep working
  unchanged across any number of shards.
* :class:`ShardFanoutError` -- the typed failure of a cross-shard
  fan-out operation, carrying per-shard outcomes so a caller knows
  exactly which shards committed and which files still need the
  journal/resume path.

See ``docs/SHARDING.md`` for the deployment-level rules.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.errors import ProtocolError, ReproError
from repro.protocol.channel import Channel
from repro.protocol.wire import WireContext

#: Virtual nodes per shard.  64 points keeps the max/min load ratio of a
#: uniform key population within ~1.3x at 8 shards while ring rebuilds
#: stay trivially cheap.
DEFAULT_VNODES = 64

_POINT_BYTES = 8  # ring positions are the first 64 bits of a SHA-256


def _point(label: bytes) -> int:
    return int.from_bytes(hashlib.sha256(label).digest()[:_POINT_BYTES],
                          "big")


class HashRing:
    """Consistent hashing of file ids onto shard ids, with virtual nodes.

    Deterministic by construction: ring points are SHA-256 digests of
    canonical ``shard:<id>:<replica>`` labels and keys hash as
    ``file:<id>``, so every process that knows the shard-id set computes
    the identical placement -- no coordination, no stored ring state.
    """

    def __init__(self, shard_ids: Iterable[int],
                 vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._shards: set[int] = set()
        self._points: List[int] = []
        self._owners: List[int] = []
        for shard_id in shard_ids:
            self.add_shard(shard_id)
        if not self._shards:
            raise ValueError("ring needs at least one shard")

    @property
    def shard_ids(self) -> List[int]:
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def _vnode_points(self, shard_id: int) -> List[int]:
        return [_point(b"shard:%d:%d" % (shard_id, replica))
                for replica in range(self.vnodes)]

    def add_shard(self, shard_id: int) -> None:
        """Add a shard's virtual nodes (existing keys move only *to* it)."""
        if shard_id in self._shards:
            raise ValueError(f"shard {shard_id} already on the ring")
        self._shards.add(shard_id)
        for point in self._vnode_points(shard_id):
            index = bisect.bisect(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard_id)

    def remove_shard(self, shard_id: int) -> None:
        """Remove a shard (only its keys move, onto the survivors)."""
        if shard_id not in self._shards:
            raise ValueError(f"shard {shard_id} not on the ring")
        if len(self._shards) == 1:
            raise ValueError("cannot remove the last shard")
        self._shards.discard(shard_id)
        keep = [(p, s) for p, s in zip(self._points, self._owners)
                if s != shard_id]
        self._points = [p for p, _s in keep]
        self._owners = [s for _p, s in keep]

    def shard_of(self, file_id: int) -> int:
        """The shard owning ``file_id``: next ring point clockwise."""
        index = bisect.bisect(self._points, _point(b"file:%d" % file_id))
        if index == len(self._points):
            index = 0  # wrap past the highest point
        return self._owners[index]

    def assignments(self, file_ids: Iterable[int]) -> Dict[int, int]:
        """``file_id -> shard_id`` for a population (tests, rebalancing)."""
        return {file_id: self.shard_of(file_id) for file_id in file_ids}


class ShardMap:
    """How to reach every shard: a ring plus a channel factory.

    ``factory(shard_id)`` must return a **new** channel to that shard on
    every call; the map itself holds no connections, so it is safe to
    share across threads and clients (each router opens its own).
    """

    def __init__(self, ring: HashRing, ctx: WireContext,
                 factory: Callable[[int], Channel]) -> None:
        self.ring = ring
        self.ctx = ctx
        self._factory = factory

    @property
    def shard_ids(self) -> List[int]:
        return self.ring.shard_ids

    def shard_of(self, file_id: int) -> int:
        return self.ring.shard_of(file_id)

    def make_channel(self, shard_id: int) -> Channel:
        """Open a fresh channel to one shard."""
        if shard_id not in self.ring._shards:
            raise ProtocolError(f"shard {shard_id} is not on the ring")
        return self._factory(shard_id)

    # -- constructors for the three transports --------------------------

    @classmethod
    def local(cls, backends: Sequence, *,
              vnodes: int = DEFAULT_VNODES) -> "ShardMap":
        """In-process shards: one loopback channel per backend."""
        from repro.protocol.channel import LoopbackChannel
        backends = list(backends)
        ring = HashRing(range(len(backends)), vnodes=vnodes)
        ctx = backends[0].ctx
        return cls(ring, ctx, lambda sid: LoopbackChannel(backends[sid]))

    @classmethod
    def tcp(cls, addresses: Sequence[Tuple[str, int]], ctx: WireContext, *,
            retry=None, vnodes: int = DEFAULT_VNODES) -> "ShardMap":
        """Shards served by sync TCP hosts, one address per shard id."""
        from repro.protocol.tcp import TcpChannel
        addresses = [tuple(address) for address in addresses]
        ring = HashRing(range(len(addresses)), vnodes=vnodes)
        return cls(ring, ctx,
                   lambda sid: TcpChannel(addresses[sid], ctx, retry=retry))

    @classmethod
    def async_tcp(cls, addresses: Sequence[Tuple[str, int]],
                  ctx: WireContext, *,
                  vnodes: int = DEFAULT_VNODES) -> "ShardMap":
        """Shards served by the pipelined asyncio hosts."""
        from repro.protocol.aio import AsyncTcpChannel
        addresses = [tuple(address) for address in addresses]
        ring = HashRing(range(len(addresses)), vnodes=vnodes)
        return cls(ring, ctx, lambda sid: AsyncTcpChannel(addresses[sid], ctx))


class ShardRoutingChannel(Channel):
    """A client channel that routes each request to its file's shard.

    Every protocol request carries a ``file_id`` (the scheme is strictly
    per-file), so routing is transparent: the client and file-system
    layers above see one ordinary :class:`Channel`.  Per-shard
    sub-channels open lazily on first use and share this router's
    ``counters`` object, keeping byte/round-trip metering identical to
    the single-server deployment.
    """

    def __init__(self, shard_map: ShardMap, network=None) -> None:
        super().__init__(shard_map.ctx, network)
        self.shard_map = shard_map
        self._channels: Dict[int, Channel] = {}

    @property
    def ring(self) -> HashRing:
        return self.shard_map.ring

    def shard_of(self, file_id: int) -> int:
        return self.shard_map.shard_of(file_id)

    def channel_for(self, file_id: int) -> Channel:
        """The (lazily opened) channel to the shard owning ``file_id``."""
        return self._shard_channel(self.shard_of(file_id))

    def _shard_channel(self, shard_id: int) -> Channel:
        channel = self._channels.get(shard_id)
        if channel is None:
            channel = self.shard_map.make_channel(shard_id)
            # One metering surface for the whole fleet: sub-channels
            # accumulate into the router's counters, so the client's
            # per-operation snapshot/delta accounting is shard-blind.
            channel.counters = self.counters
            self._channels[shard_id] = channel
        return channel

    def request(self, message):
        file_id = getattr(message, "file_id", None)
        if file_id is None:
            raise ProtocolError(
                f"{type(message).__name__} carries no file_id; "
                f"cannot route it to a shard")
        return self._shard_channel(self.shard_of(file_id)).request(message)

    def _transport(self, request_bytes: bytes) -> bytes:
        raise ProtocolError("the routing channel has no transport of its "
                            "own; requests are routed per file id")

    def close(self) -> None:
        for channel in self._channels.values():
            close = getattr(channel, "close", None)
            if close is not None:
                close()
        self._channels.clear()

    def __enter__(self) -> "ShardRoutingChannel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class ShardOutcome:
    """What one shard did during a cross-shard fan-out operation."""

    shard_id: Optional[int]
    committed: List[str] = field(default_factory=list)
    failed: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failed


class ShardFanoutError(ReproError):
    """A cross-shard fan-out partially failed.

    Per-shard commits are atomic (each file's deletion is one two-phase
    exchange against one shard), so a mid-fan-out failure leaves some
    shards committed and others not.  ``outcomes`` names both sides:
    callers re-drive only the failed files -- typically via the client's
    deletion journal (``resume_delete_many``) once the shard recovers.
    """

    def __init__(self, outcomes: Dict[Optional[int], ShardOutcome]) -> None:
        self.outcomes = outcomes
        committed = sorted(name for outcome in outcomes.values()
                           for name in outcome.committed)
        failed = {name: detail for outcome in outcomes.values()
                  for name, detail in sorted(outcome.failed.items())}
        self.committed = committed
        self.failed = failed
        shards = sorted((s for s, o in outcomes.items() if not o.ok),
                        key=lambda s: (-1 if s is None else s))
        super().__init__(
            f"fan-out failed on shard(s) {shards}: "
            f"{len(failed)} file(s) failed ({sorted(failed)}), "
            f"{len(committed)} committed ({committed})")

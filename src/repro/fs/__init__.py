"""Multi-file outsourced file system (Section V deployment shape)."""

from repro.fs.filesystem import (FileRecord, OutsourcedFile,
                                 OutsourcedFileSystem, directory_group)
from repro.fs.indexing import ItemIndex, Located
from repro.fs.proxy import ALL_RIGHTS, DELETE, READ, WRITE, KeyProxy

__all__ = [
    "ALL_RIGHTS",
    "DELETE",
    "FileRecord",
    "ItemIndex",
    "KeyProxy",
    "Located",
    "OutsourcedFile",
    "OutsourcedFileSystem",
    "READ",
    "WRITE",
    "directory_group",
]

"""Two-party fine-grained assured deletion of outsourced data.

A complete implementation of Mo, Qiao & Chen (ICDCS 2014): key-modulation
trees for assured deletion without third parties, plus the substrates a
deployment needs (crypto, protocol, server, client, file system) and the
experiment harness reproducing the paper's evaluation.

Typical entry points:

* :class:`repro.core.LocalScheme` -- single-file client/server pair.
* :class:`repro.fs.OutsourcedFileSystem` -- multi-file deployment with
  outsourced master keys (Section V).
* :mod:`repro.sim.threat` -- the executable threat model.
* :mod:`repro.analysis` -- table/figure regeneration.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

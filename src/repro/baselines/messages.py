"""Protocol messages for the baseline solutions.

The Section III baselines need only a flat blob store: upload all, fetch
one, fetch all, replace all, put one, delete one.  They use the same wire
codec and metering channel as the key-modulation protocol so Tables I/II
compare exact bytes on equal footing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.protocol.messages import Message, register
from repro.protocol.wire import Reader, Writer


def _write_items(w: Writer, item_ids: tuple[int, ...],
                 blobs: tuple[bytes, ...]) -> None:
    w.u64_list(item_ids)
    w.u32(len(blobs))
    for blob in blobs:
        w.blob(blob)


def _read_items(r: Reader) -> tuple[tuple[int, ...], tuple[bytes, ...]]:
    item_ids = tuple(r.u64_list())
    blobs = tuple(r.blob() for _ in range(r.u32()))
    return item_ids, blobs


@register
@dataclass(frozen=True)
class BlobUploadAll(Message):
    """Upload (or wholly replace) a file's ciphertexts."""

    TYPE: ClassVar[int] = 32
    file_id: int = 0
    item_ids: tuple[int, ...] = ()
    ciphertexts: tuple[bytes, ...] = ()

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id)
        _write_items(w, self.item_ids, self.ciphertexts)

    @classmethod
    def decode_body(cls, r: Reader) -> "BlobUploadAll":
        file_id = r.u64()
        item_ids, ciphertexts = _read_items(r)
        return cls(file_id=file_id, item_ids=item_ids, ciphertexts=ciphertexts)

    def payload_bytes(self) -> int:
        return sum(4 + len(c) for c in self.ciphertexts)


@register
@dataclass(frozen=True)
class BlobGet(Message):
    """Fetch one ciphertext."""

    TYPE: ClassVar[int] = 33
    file_id: int = 0
    item_id: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id).u64(self.item_id)

    @classmethod
    def decode_body(cls, r: Reader) -> "BlobGet":
        return cls(file_id=r.u64(), item_id=r.u64())


@register
@dataclass(frozen=True)
class BlobReply(Message):
    """One ciphertext."""

    TYPE: ClassVar[int] = 34
    ciphertext: bytes = b""

    def encode_body(self, w: Writer) -> None:
        w.blob(self.ciphertext)

    @classmethod
    def decode_body(cls, r: Reader) -> "BlobReply":
        return cls(ciphertext=r.blob())

    def payload_bytes(self) -> int:
        return 4 + len(self.ciphertext)


@register
@dataclass(frozen=True)
class BlobGetAll(Message):
    """Fetch every ciphertext of a file."""

    TYPE: ClassVar[int] = 35
    file_id: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id)

    @classmethod
    def decode_body(cls, r: Reader) -> "BlobGetAll":
        return cls(file_id=r.u64())


@register
@dataclass(frozen=True)
class BlobAllReply(Message):
    """Every ciphertext of a file."""

    TYPE: ClassVar[int] = 36
    item_ids: tuple[int, ...] = ()
    ciphertexts: tuple[bytes, ...] = ()

    def encode_body(self, w: Writer) -> None:
        _write_items(w, self.item_ids, self.ciphertexts)

    @classmethod
    def decode_body(cls, r: Reader) -> "BlobAllReply":
        item_ids, ciphertexts = _read_items(r)
        return cls(item_ids=item_ids, ciphertexts=ciphertexts)

    def payload_bytes(self) -> int:
        return sum(4 + len(c) for c in self.ciphertexts)


@register
@dataclass(frozen=True)
class BlobPut(Message):
    """Store (or replace) one ciphertext."""

    TYPE: ClassVar[int] = 37
    file_id: int = 0
    item_id: int = 0
    ciphertext: bytes = b""

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id).u64(self.item_id).blob(self.ciphertext)

    @classmethod
    def decode_body(cls, r: Reader) -> "BlobPut":
        return cls(file_id=r.u64(), item_id=r.u64(), ciphertext=r.blob())

    def payload_bytes(self) -> int:
        return 4 + len(self.ciphertext)


@register
@dataclass(frozen=True)
class BlobDelete(Message):
    """Discard one ciphertext (plain removal, nothing assured)."""

    TYPE: ClassVar[int] = 38
    file_id: int = 0
    item_id: int = 0

    def encode_body(self, w: Writer) -> None:
        w.u64(self.file_id).u64(self.item_id)

    @classmethod
    def decode_body(cls, r: Reader) -> "BlobDelete":
        return cls(file_id=r.u64(), item_id=r.u64())

"""The compared solutions: Section III strawmen, a FADE-style third-party
baseline, and an adapter driving the paper's scheme through the same
interface."""

from repro.baselines.base import BlobStoreServer, DeletionScheme
from repro.baselines.ephemerizer import (Ephemerizer, PolicyClient,
                                         PolicyCloud)
from repro.baselines.individual_key import IndividualKeySolution
from repro.baselines.keymod import KeyModulationScheme
from repro.baselines.master_key import MasterKeySolution

__all__ = [
    "BlobStoreServer",
    "DeletionScheme",
    "Ephemerizer",
    "IndividualKeySolution",
    "KeyModulationScheme",
    "MasterKeySolution",
    "PolicyClient",
    "PolicyCloud",
]

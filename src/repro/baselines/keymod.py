"""Adapter presenting the paper's scheme through the baseline interface.

Lets the experiment harness drive "our work" with exactly the same calls
(and metering) as the Section III baselines, so every number in Tables
I/II comes from the same code path.
"""

from __future__ import annotations

from repro.baselines.base import DeletionScheme
from repro.client.client import AssuredDeletionClient
from repro.core.params import Params
from repro.crypto.rng import RandomSource, SystemRandom
from repro.protocol.channel import Channel
from repro.sim.metrics import MetricsCollector


class KeyModulationScheme(DeletionScheme):
    """The paper's two-party fine-grained solution, single-file form."""

    name = "our-work"

    def __init__(self, channel: Channel, params: Params | None = None,
                 rng: RandomSource | None = None,
                 metrics: MetricsCollector | None = None,
                 file_id: int = 1) -> None:
        super().__init__(channel, metrics)
        self.params = params if params is not None else Params()
        # The inner client shares our metrics collector, so its records
        # (which carry exact hash counts) are the ones reported.
        self._client = AssuredDeletionClient(
            channel, self.params,
            rng=rng if rng is not None else SystemRandom(),
            metrics=self.metrics)
        self.file_id = file_id
        self._master_key: bytes | None = None

    @property
    def client(self) -> AssuredDeletionClient:
        return self._client

    def outsource(self, items: list[bytes]) -> list[int]:
        self._master_key = self._client.outsource(self.file_id, items)
        return self._client.item_ids_of(len(items))

    def adopt_master_key(self, master_key: bytes) -> None:
        """Bind to a pre-built server file (benchmark-scale setups)."""
        self._master_key = master_key

    def _key(self) -> bytes:
        if self._master_key is None:
            raise RuntimeError("outsource a file first")
        return self._master_key

    def access(self, item_id: int) -> bytes:
        return self._client.access(self.file_id, self._key(), item_id)

    def insert(self, data: bytes) -> int:
        return self._client.insert(self.file_id, self._key(), data)

    def delete(self, item_id: int) -> None:
        self._master_key = self._client.delete(self.file_id, self._key(),
                                               item_id)

    def delete_many(self, item_ids: list[int]) -> None:
        self._master_key = self._client.delete_many(self.file_id, self._key(),
                                                    item_ids)

    def client_storage_bytes(self) -> int:
        return len(self._key())

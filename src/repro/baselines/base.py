"""Common scaffolding for the three compared solutions.

:class:`DeletionScheme` is the uniform interface Tables I and II drive:
outsource a file, then access / insert / delete individual items, with
the metrics collector recording exact bytes and client time for each
operation, and :meth:`client_storage_bytes` reporting the key material
the client must hold (Table II row 1).

:class:`BlobStoreServer` is the dumb encrypted-blob cloud the Section III
baselines run against.
"""

from __future__ import annotations

import abc
import time

from repro.baselines import messages as bmsg
from repro.core.errors import UnknownItemError
from repro.core.params import Params
from repro.protocol import messages as msg
from repro.protocol.channel import Channel
from repro.protocol.wire import WireContext
from repro.sim.metrics import MetricsCollector, OpRecord


class BlobStoreServer:
    """Flat ciphertext store keyed by (file id, item id)."""

    def __init__(self, params: Params | None = None) -> None:
        self.params = params if params is not None else Params()
        self.ctx = WireContext(modulator_width=self.params.modulator_size)
        self._files: dict[int, dict[int, bytes]] = {}

    def handle_bytes(self, data: bytes) -> bytes:
        request = msg.decode_message(self.ctx, data)
        reply = self.handle(request)
        return msg.encode_message(self.ctx, reply)

    def handle(self, request: msg.Message) -> msg.Message:
        if isinstance(request, bmsg.BlobUploadAll):
            self._files[request.file_id] = dict(zip(request.item_ids,
                                                    request.ciphertexts))
            return msg.Ack()
        if isinstance(request, bmsg.BlobGet):
            ciphertext = self._files.get(request.file_id, {}).get(request.item_id)
            if ciphertext is None:
                return msg.ErrorReply(code=msg.E_UNKNOWN_ITEM,
                                      detail=f"no item {request.item_id}")
            return bmsg.BlobReply(ciphertext=ciphertext)
        if isinstance(request, bmsg.BlobGetAll):
            items = self._files.get(request.file_id)
            if items is None:
                return msg.ErrorReply(code=msg.E_UNKNOWN_FILE,
                                      detail=f"no file {request.file_id}")
            ids = tuple(sorted(items))
            return bmsg.BlobAllReply(item_ids=ids,
                                     ciphertexts=tuple(items[i] for i in ids))
        if isinstance(request, bmsg.BlobPut):
            self._files.setdefault(request.file_id, {})[request.item_id] = \
                request.ciphertext
            return msg.Ack()
        if isinstance(request, bmsg.BlobDelete):
            self._files.get(request.file_id, {}).pop(request.item_id, None)
            return msg.Ack()
        return msg.ErrorReply(code=msg.E_BAD_REQUEST,
                              detail=f"unsupported {type(request).__name__}")

    def stored_items(self, file_id: int) -> dict[int, bytes]:
        """Direct state access for the threat-model simulator."""
        return dict(self._files.get(file_id, {}))


class DeletionScheme(abc.ABC):
    """Uniform driver interface for the three compared solutions."""

    #: Human-readable solution name, as used in the paper's tables.
    name: str = "abstract"

    def __init__(self, channel: Channel,
                 metrics: MetricsCollector | None = None) -> None:
        self.channel = channel
        self.metrics = metrics if metrics is not None else MetricsCollector()

    # -- measurement helpers ------------------------------------------------

    def _begin(self) -> tuple:
        return self.channel.counters.snapshot(), time.perf_counter()

    def _finish(self, op: str, begin: tuple) -> OpRecord:
        counters0, t0 = begin
        wall = time.perf_counter() - t0
        delta = self.channel.counters.delta(counters0)
        record = OpRecord(
            op=op,
            bytes_sent=delta.bytes_sent,
            bytes_received=delta.bytes_received,
            payload_sent=delta.payload_sent,
            payload_received=delta.payload_received,
            client_seconds=max(0.0, wall - delta.server_seconds),
            round_trips=delta.round_trips,
        )
        self.metrics.add(record)
        return record

    @staticmethod
    def _expect(response: msg.Message, expected_type: type) -> msg.Message:
        if isinstance(response, msg.ErrorReply):
            raise UnknownItemError(response.detail)
        if not isinstance(response, expected_type):
            raise UnknownItemError(
                f"expected {expected_type.__name__}, got "
                f"{type(response).__name__}")
        return response

    # -- the interface the experiment harness drives ------------------------

    @abc.abstractmethod
    def outsource(self, items: list[bytes]) -> list[int]:
        """Upload ``items``; returns their ids."""

    @abc.abstractmethod
    def access(self, item_id: int) -> bytes:
        """Fetch and decrypt one item."""

    @abc.abstractmethod
    def insert(self, data: bytes) -> int:
        """Add one item; returns its id."""

    @abc.abstractmethod
    def delete(self, item_id: int) -> None:
        """Assuredly delete one item."""

    @abc.abstractmethod
    def client_storage_bytes(self) -> int:
        """Bytes of key material the client must hold."""

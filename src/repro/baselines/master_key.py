"""The master-key baseline -- Section III-A.

One master key ``K``; per-item keys ``k_i = PRF(K, i)``.  Deleting any
item forces a new master key and a re-encryption of *every* remaining
item: the client downloads the whole file, decrypts it, re-encrypts under
``PRF(K', i)``, and replaces the server copy.  ``O(1)`` client storage,
``O(n)`` deletion communication and computation -- Table I's first column.

Deletion is assured exactly when the re-encryption completes and the old
``K`` is shredded; the threat-model tests also exercise the failure mode
where a client skips the re-encryption (the deleted item then resurfaces
once ``K`` leaks).
"""

from __future__ import annotations

from repro.baselines import messages as bmsg
from repro.baselines.base import DeletionScheme
from repro.client.keystore import KeyStore
from repro.core.ciphertext import ItemCodec
from repro.core.params import Params
from repro.crypto.prf import prf, prf_many
from repro.crypto.rng import RandomSource, SystemRandom
from repro.protocol import messages as msg
from repro.protocol.channel import Channel
from repro.sim.metrics import MetricsCollector


class MasterKeySolution(DeletionScheme):
    """Single-master-key encryption with full re-encryption on delete."""

    name = "master-key"
    _KEY_NAME = "master"

    def __init__(self, channel: Channel, params: Params | None = None,
                 rng: RandomSource | None = None,
                 metrics: MetricsCollector | None = None,
                 file_id: int = 1) -> None:
        super().__init__(channel, metrics)
        self.params = params if params is not None else Params()
        self.codec = ItemCodec(self.params)
        self.rng = rng if rng is not None else SystemRandom()
        self.keystore = KeyStore()
        self.file_id = file_id

    def _key_for(self, master_key: bytes, item_id: int) -> bytes:
        """``k_i = PRF(K, i)`` stretched to the chain-output width."""
        return prf(master_key, item_id,
                   length=self.params.chain_hash().digest_size,
                   hash_factory=self.params.chain_hash)

    def _keys_for(self, master_key: bytes, item_ids: list[int]) -> list[bytes]:
        return prf_many(master_key, item_ids,
                        length=self.params.chain_hash().digest_size,
                        hash_factory=self.params.chain_hash)

    def outsource(self, items: list[bytes]) -> list[int]:
        begin = self._begin()
        master_key = self.rng.bytes(self.params.master_key_size)
        self.keystore.put(self._KEY_NAME, master_key)
        item_ids = [self.keystore.next_item_id() for _ in items]
        ciphertexts = tuple(self.codec.encrypt_many(
            self._keys_for(master_key, item_ids), list(items), item_ids,
            [self.rng.bytes(8) for _ in items]))
        self._expect(self.channel.request(bmsg.BlobUploadAll(
            file_id=self.file_id, item_ids=tuple(item_ids),
            ciphertexts=ciphertexts)), msg.Ack)
        self._finish("outsource", begin)
        return item_ids

    def access(self, item_id: int) -> bytes:
        begin = self._begin()
        reply = self._expect(self.channel.request(bmsg.BlobGet(
            file_id=self.file_id, item_id=item_id)), bmsg.BlobReply)
        master_key = self.keystore.get(self._KEY_NAME)
        data, recovered = self.codec.decrypt(self._key_for(master_key, item_id),
                                             reply.ciphertext)
        if recovered != item_id:
            raise ValueError("server returned the wrong item")
        self._finish("access", begin)
        return data

    def insert(self, data: bytes) -> int:
        begin = self._begin()
        master_key = self.keystore.get(self._KEY_NAME)
        item_id = self.keystore.next_item_id()
        ciphertext = self.codec.encrypt(self._key_for(master_key, item_id),
                                        data, item_id, self.rng.bytes(8))
        self._expect(self.channel.request(bmsg.BlobPut(
            file_id=self.file_id, item_id=item_id, ciphertext=ciphertext)),
            msg.Ack)
        self._finish("insert", begin)
        return item_id

    def delete(self, item_id: int) -> None:
        """O(n): fetch everything, re-key everything, replace everything."""
        begin = self._begin()
        old_key = self.keystore.get(self._KEY_NAME)

        reply = self._expect(self.channel.request(bmsg.BlobGetAll(
            file_id=self.file_id)), bmsg.BlobAllReply)

        new_key = self.rng.bytes(self.params.master_key_size)
        new_ids = [other_id for other_id in reply.item_ids
                   if other_id != item_id]
        survivors = [ciphertext for other_id, ciphertext
                     in zip(reply.item_ids, reply.ciphertexts)
                     if other_id != item_id]
        decrypted = self.codec.decrypt_many(self._keys_for(old_key, new_ids),
                                            survivors)
        plaintexts = []
        for other_id, (data, recovered) in zip(new_ids, decrypted):
            if recovered != other_id:
                raise ValueError("server returned a corrupted item")
            plaintexts.append(data)
        new_ciphertexts = self.codec.encrypt_many(
            self._keys_for(new_key, new_ids), plaintexts, new_ids,
            [self.rng.bytes(8) for _ in new_ids])

        self._expect(self.channel.request(bmsg.BlobUploadAll(
            file_id=self.file_id, item_ids=tuple(new_ids),
            ciphertexts=tuple(new_ciphertexts))), msg.Ack)

        self.keystore.shred(self._KEY_NAME)
        self.keystore.put(self._KEY_NAME, new_key)
        self._finish("delete", begin)

    def delete_without_reencryption(self, item_id: int) -> None:
        """The broken shortcut: drop the ciphertext but keep the old key.

        Exists only for the threat-model tests, which prove the deleted
        item resurfaces once the (unchanged) master key leaks.
        """
        self._expect(self.channel.request(bmsg.BlobDelete(
            file_id=self.file_id, item_id=item_id)), msg.Ack)

    def client_storage_bytes(self) -> int:
        return self.keystore.key_bytes_stored()

"""A FADE-style third-party policy-deletion baseline (Section VII).

Tang et al.'s FADE associates each *policy* with a control key kept by a
third party (an ephemerizer).  Files are encrypted under per-file data
keys; each data key is wrapped under its policy's control key and stored,
wrapped, next to the ciphertext.  Deleting a policy means asking the
third party to shred the control key, killing every file under it.

This baseline exists to demonstrate, executably, the two arguments the
paper's introduction makes against the third-party approach:

1. **Trust**: an attacker (or subpoena) reaching the third party obtains
   the control keys, and "deleted" data revives -- see
   :meth:`Ephemerizer.compromise` and the security tests.
2. **Granularity**: deleting one *item* of one file under a policy is not
   supported; the client must fall back to re-encrypting everything else
   under a fresh policy, i.e. the master-key solution's ``O(n)`` cost --
   see :meth:`PolicyClient.delete_item_via_repolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.client.keystore import KeyStore
from repro.core.ciphertext import ItemCodec
from repro.core.errors import UnknownItemError
from repro.core.params import Params
from repro.crypto.modes import aes_ctr
from repro.crypto.rng import RandomSource, SystemRandom


class Ephemerizer:
    """The third party: holds policy control keys, wraps/unwraps data keys."""

    def __init__(self, rng: RandomSource | None = None) -> None:
        self._rng = rng if rng is not None else SystemRandom()
        self._policies = KeyStore()

    def create_policy(self, policy: str) -> None:
        self._policies.put(f"policy:{policy}", self._rng.bytes(16))

    def wrap(self, policy: str, data_key: bytes) -> bytes:
        """Encrypt a data key under the policy control key."""
        control = self._policies.get(f"policy:{policy}")
        nonce = self._rng.bytes(8)
        return nonce + aes_ctr(control, nonce, data_key)

    def unwrap(self, policy: str, wrapped: bytes) -> bytes:
        """Decrypt a wrapped data key -- needed for *every* data access."""
        control = self._policies.get(f"policy:{policy}")
        return aes_ctr(control, wrapped[:8], wrapped[8:])

    def revoke_policy(self, policy: str) -> None:
        """Shred a policy's control key: every file under it goes dark."""
        self._policies.shred(f"policy:{policy}")

    def compromise(self) -> dict[str, bytes]:
        """Threat-model hook: what an attacker at the third party learns."""
        return self._policies.seize()


@dataclass
class _StoredFile:
    policy: str
    wrapped_key: bytes
    ciphertexts: dict[int, bytes]


class PolicyCloud:
    """The cloud store of the FADE-style deployment (untrusted)."""

    def __init__(self) -> None:
        self._files: dict[int, _StoredFile] = {}

    def put_file(self, file_id: int, policy: str, wrapped_key: bytes,
                 ciphertexts: dict[int, bytes]) -> None:
        self._files[file_id] = _StoredFile(policy=policy,
                                           wrapped_key=wrapped_key,
                                           ciphertexts=dict(ciphertexts))

    def get_file(self, file_id: int) -> _StoredFile:
        stored = self._files.get(file_id)
        if stored is None:
            raise UnknownItemError(f"no file {file_id}")
        return stored

    def snapshot(self) -> dict[int, _StoredFile]:
        """Threat-model hook: the server keeps everything it ever saw."""
        return {fid: _StoredFile(f.policy, f.wrapped_key, dict(f.ciphertexts))
                for fid, f in self._files.items()}


class PolicyClient:
    """Client of the FADE-style deployment."""

    def __init__(self, ephemerizer: Ephemerizer, cloud: PolicyCloud,
                 params: Params | None = None,
                 rng: RandomSource | None = None) -> None:
        self.params = params if params is not None else Params()
        self.codec = ItemCodec(self.params)
        self._ephemerizer = ephemerizer
        self._cloud = cloud
        self._rng = rng if rng is not None else SystemRandom()
        self._next_item = 1

    def _chain_output(self, data_key: bytes) -> bytes:
        return data_key.ljust(self.params.chain_hash().digest_size, b"\x00")

    def outsource(self, file_id: int, policy: str,
                  items: list[bytes]) -> list[int]:
        """Encrypt a file under a fresh data key wrapped by ``policy``."""
        data_key = self._rng.bytes(16)
        wrapped = self._ephemerizer.wrap(policy, data_key)
        ciphertexts = {}
        item_ids = []
        for data in items:
            item_id = self._next_item
            self._next_item += 1
            item_ids.append(item_id)
            ciphertexts[item_id] = self.codec.encrypt(
                self._chain_output(data_key), data, item_id,
                self._rng.bytes(8))
        self._cloud.put_file(file_id, policy, wrapped, ciphertexts)
        return item_ids

    def access(self, file_id: int, item_id: int) -> bytes:
        """Every access needs the third party online to unwrap the key."""
        stored = self._cloud.get_file(file_id)
        ciphertext = stored.ciphertexts.get(item_id)
        if ciphertext is None:
            raise UnknownItemError(f"no item {item_id}")
        data_key = self._ephemerizer.unwrap(stored.policy, stored.wrapped_key)
        data, recovered = self.codec.decrypt(self._chain_output(data_key),
                                             ciphertext)
        if recovered != item_id:
            raise UnknownItemError("cloud returned the wrong item")
        return data

    def delete_policy(self, policy: str) -> None:
        """Policy-grained deletion: everything under ``policy`` dies."""
        self._ephemerizer.revoke_policy(policy)

    def delete_item_via_repolicy(self, file_id: int, item_id: int,
                                 new_policy: str) -> None:
        """Fine-grained deletion forced through the policy mechanism.

        The only way to kill one item is to re-encrypt every *other* item
        under a fresh data key/policy and revoke the old policy -- the
        ``O(n)`` cost the paper predicts when third-party schemes are bent
        to fine-grained deletion.
        """
        stored = self._cloud.get_file(file_id)
        old_key = self._ephemerizer.unwrap(stored.policy, stored.wrapped_key)
        survivors = []
        for other_id, ciphertext in sorted(stored.ciphertexts.items()):
            if other_id == item_id:
                continue
            data, _rid = self.codec.decrypt(self._chain_output(old_key),
                                            ciphertext)
            survivors.append((other_id, data))

        old_policy = stored.policy
        new_key = self._rng.bytes(16)
        self._ephemerizer.create_policy(new_policy)
        wrapped = self._ephemerizer.wrap(new_policy, new_key)
        new_ciphertexts = {
            other_id: self.codec.encrypt(self._chain_output(new_key), data,
                                         other_id, self._rng.bytes(8))
            for other_id, data in survivors
        }
        self._cloud.put_file(file_id, new_policy, wrapped, new_ciphertexts)
        self._ephemerizer.revoke_policy(old_policy)

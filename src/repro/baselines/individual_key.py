"""The individual-key baseline -- Section III-B.

One independent key per item, all kept by the client.  Deletion is a
local key shred plus a one-line server request -- ``O(1)`` communication
and computation -- but the client stores ``O(n)`` keys: at the paper's
scale (10^5 items) that is ~1.5 MB *per file*, and the key volume rivals
the data volume once items shrink toward the key size.
"""

from __future__ import annotations

from repro.baselines import messages as bmsg
from repro.baselines.base import DeletionScheme
from repro.client.keystore import KeyStore
from repro.core.ciphertext import ItemCodec
from repro.core.params import Params
from repro.crypto.rng import RandomSource, SystemRandom
from repro.protocol import messages as msg
from repro.protocol.channel import Channel
from repro.sim.metrics import MetricsCollector


class IndividualKeySolution(DeletionScheme):
    """Per-item keys held client-side; deletion = local shred."""

    name = "individual-key"

    def __init__(self, channel: Channel, params: Params | None = None,
                 rng: RandomSource | None = None,
                 metrics: MetricsCollector | None = None,
                 file_id: int = 1) -> None:
        super().__init__(channel, metrics)
        self.params = params if params is not None else Params()
        self.codec = ItemCodec(self.params)
        self.rng = rng if rng is not None else SystemRandom()
        self.keystore = KeyStore()
        self.file_id = file_id

    def _key_name(self, item_id: int) -> str:
        return f"item:{item_id}"

    def _new_item_key(self) -> bytes:
        # Stored at master-key width (16 B in the paper's Table II); the
        # codec widens it internally for the chain-hash item tag.
        return self.rng.bytes(self.params.master_key_size)

    def _chain_output(self, item_key: bytes) -> bytes:
        return item_key.ljust(self.params.chain_hash().digest_size, b"\x00")

    def outsource(self, items: list[bytes]) -> list[int]:
        begin = self._begin()
        item_ids = []
        ciphertexts = []
        for data in items:
            item_id = self.keystore.next_item_id()
            item_key = self._new_item_key()
            self.keystore.put(self._key_name(item_id), item_key)
            item_ids.append(item_id)
            ciphertexts.append(self.codec.encrypt(
                self._chain_output(item_key), data, item_id,
                self.rng.bytes(8)))
        self._expect(self.channel.request(bmsg.BlobUploadAll(
            file_id=self.file_id, item_ids=tuple(item_ids),
            ciphertexts=tuple(ciphertexts))), msg.Ack)
        self._finish("outsource", begin)
        return item_ids

    def access(self, item_id: int) -> bytes:
        begin = self._begin()
        reply = self._expect(self.channel.request(bmsg.BlobGet(
            file_id=self.file_id, item_id=item_id)), bmsg.BlobReply)
        item_key = self.keystore.get(self._key_name(item_id))
        data, recovered = self.codec.decrypt(self._chain_output(item_key),
                                             reply.ciphertext)
        if recovered != item_id:
            raise ValueError("server returned the wrong item")
        self._finish("access", begin)
        return data

    def insert(self, data: bytes) -> int:
        begin = self._begin()
        item_id = self.keystore.next_item_id()
        item_key = self._new_item_key()
        self.keystore.put(self._key_name(item_id), item_key)
        ciphertext = self.codec.encrypt(self._chain_output(item_key), data,
                                        item_id, self.rng.bytes(8))
        self._expect(self.channel.request(bmsg.BlobPut(
            file_id=self.file_id, item_id=item_id, ciphertext=ciphertext)),
            msg.Ack)
        self._finish("insert", begin)
        return item_id

    def delete(self, item_id: int) -> None:
        """O(1): shred the item key locally, then a one-line removal."""
        begin = self._begin()
        self.keystore.shred(self._key_name(item_id))
        self._expect(self.channel.request(bmsg.BlobDelete(
            file_id=self.file_id, item_id=item_id)), msg.Ack)
        self._finish("delete", begin)

    def client_storage_bytes(self) -> int:
        return self.keystore.key_bytes_stored()

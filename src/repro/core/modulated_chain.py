"""The modulated hash chain -- Section IV-A of the paper.

A modulated hash chain evaluates

    F(K, M) = H( ... H( H(K xor x1) xor x2 ) ... xor xl )

over an ordered modulator list ``M = <x1, ..., xl>`` (Eq. 1), with the
recursive form ``F(K, empty) = K`` and
``F(K, M^(i)) = H(F(K, M^(i-1)) xor x_i)`` (Eq. 2).

Lemma 1 is the engine of the whole scheme: after the master key changes
from ``K`` to ``K'``, rewriting the single modulator

    x_i' = x_i xor F(K, M^(i-1)) xor F(K', M^(i-1))          (Eq. 3)

leaves the chain output unchanged.  :func:`rewrite_delta` computes the XOR
mask ``F(K, prefix) xor F(K', prefix)`` that the deletion algorithm sends
to the server as ``delta(c)`` (Eq. 5).

The chain hash is pluggable; the master key is zero-padded to the digest
width before the first XOR so a 16-byte AES-width master key (the paper's
Table II stores exactly 16 bytes per file) can drive a 20-byte SHA-1 chain.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.crypto.hmac import HashFactory
from repro.crypto.sha1 import Sha1


_from_bytes = int.from_bytes


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings.

    Hot in every scalar chain step (one XOR per hash application), so the
    common case -- two 20-byte SHA-1-width operands -- skips the length
    comparison and the dynamic width lookup; the bound ``int.from_bytes``
    avoids a method-descriptor fetch per call.
    """
    if len(a) == 20 and len(b) == 20:
        return (_from_bytes(a, "big") ^ _from_bytes(b, "big")).to_bytes(20, "big")
    if len(a) != len(b):
        raise ValueError(f"xor operands differ in length: {len(a)} vs {len(b)}")
    return (_from_bytes(a, "big") ^ _from_bytes(b, "big")).to_bytes(len(a), "big")


_BULK_MIN_BATCH: int | None = None


def _bulk_min_batch() -> int:
    """Batch-size threshold of the vectorised SHA-1 engine (lazy import)."""
    global _BULK_MIN_BATCH
    if _BULK_MIN_BATCH is None:
        from repro.crypto.bulk_hash import MIN_BATCH
        _BULK_MIN_BATCH = MIN_BATCH
    return _BULK_MIN_BATCH


class ChainEngine:
    """Evaluates modulated hash chains and counts hash invocations.

    The hash-invocation counter backs the computation-overhead metrics of
    Figure 6: wall-clock time in pure Python carries a large interpreter
    constant, so the experiment harness reports exact hash counts alongside
    measured time (both scale as ``O(log n)``).
    """

    __slots__ = ("hash_factory", "digest_size", "hash_calls", "_sha1_lanes")

    def __init__(self, hash_factory: HashFactory = Sha1) -> None:
        self.hash_factory = hash_factory
        self.digest_size = hash_factory().digest_size
        self.hash_calls = 0
        # Capability check, not a name check: any factory that *is* Sha1
        # (including an alias bound to another name) or subclasses it
        # produces FIPS 180-4 SHA-1 digests and can ride the numpy lanes.
        self._sha1_lanes = (isinstance(hash_factory, type)
                            and issubclass(hash_factory, Sha1))

    def h(self, data: bytes) -> bytes:
        """One application of the chain hash ``H``."""
        self.hash_calls += 1
        hasher = self.hash_factory()
        hasher.update(data)
        return hasher.digest()

    def pad_key(self, master_key: bytes) -> bytes:
        """Zero-pad a master key to the digest width (``F(K, empty) = K``)."""
        if len(master_key) > self.digest_size:
            raise ValueError("master key longer than chain digest")
        return master_key.ljust(self.digest_size, b"\x00")

    def step(self, value: bytes, modulator: bytes) -> bytes:
        """One chain step: ``H(value xor modulator)`` (Eq. 2)."""
        return self.h(xor_bytes(value, modulator))

    def step_many(self, values: list[bytes],
                  modulators: list[bytes]) -> list[bytes]:
        """Many independent chain steps at once.

        Bit-identical to per-pair :meth:`step`; vectorised when the chain
        hash is SHA-1 and the batch is large enough to amortise numpy
        overhead.  Hash-call accounting is unchanged (one call per pair).
        """
        if len(values) != len(modulators):
            raise ValueError("one modulator per value required")
        self.hash_calls += len(values)
        if self._sha1_lanes and len(values) >= _bulk_min_batch():
            from repro.crypto.bulk_hash import sha1_many, xor_many
            return sha1_many(xor_many(values, modulators))
        results = []
        for value, modulator in zip(values, modulators):
            hasher = self.hash_factory()
            hasher.update(xor_bytes(value, modulator))
            results.append(hasher.digest())
        return results

    def evaluate(self, master_key: bytes, modulators: Iterable[bytes]) -> bytes:
        """Evaluate ``F(K, M)`` over the full modulator list."""
        value = self.pad_key(master_key)
        for modulator in modulators:
            value = self.step(value, modulator)
        return value

    def prefix_values(self, master_key: bytes,
                      modulators: Sequence[bytes]) -> list[bytes]:
        """Return ``[F(K, M^(0)), F(K, M^(1)), ..., F(K, M^(l))]``.

        ``M^(i)`` is the length-``i`` prefix of ``M``; the list has
        ``len(modulators) + 1`` entries and is computed in one pass, which
        is what keeps the deletion algorithm at ``O(log n)`` hashes.
        """
        values = [self.pad_key(master_key)]
        for modulator in modulators:
            values.append(self.step(values[-1], modulator))
        return values


def rewrite_modulator(engine: ChainEngine, old_key: bytes, new_key: bytes,
                      modulators: Sequence[bytes], index: int) -> bytes:
    """Lemma 1: the value ``x_i'`` keeping ``F`` constant across a key change.

    ``index`` is 1-based as in the paper (``x_i`` with ``1 <= i <= l``).
    """
    if not 1 <= index <= len(modulators):
        raise IndexError("modulator index out of range")
    prefix = modulators[:index - 1]
    mask = rewrite_delta(engine, old_key, new_key, prefix)
    return xor_bytes(modulators[index - 1], mask)


def rewrite_delta(engine: ChainEngine, old_key: bytes, new_key: bytes,
                  prefix: Sequence[bytes]) -> bytes:
    """The XOR mask ``F(K, prefix) xor F(K', prefix)`` of Eq. 3 / Eq. 5."""
    return xor_bytes(engine.evaluate(old_key, prefix),
                     engine.evaluate(new_key, prefix))


def releaf_modulator(new_prefix_value: bytes, old_prefix_value: bytes,
                     old_leaf_modulator: bytes) -> bytes:
    """Leaf-modulator reassignment used by balancing and insertion.

    When a leaf moves so that the chain value *before* its leaf modulator
    changes from ``old_prefix_value`` to ``new_prefix_value``, the new leaf
    modulator

        x' = new_prefix xor old_prefix xor x

    preserves the leaf's data key, because
    ``H(new_prefix xor x') = H(old_prefix xor x)``.  Equations (8) and (9)
    of the paper and the leaf reassignment of Section IV-E are all
    instances of this identity.
    """
    return xor_bytes(xor_bytes(new_prefix_value, old_prefix_value),
                     old_leaf_modulator)

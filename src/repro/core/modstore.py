"""Modulator storage backends for the modulation tree.

The tree stores two kinds of modulators, both addressed by *heap slot*
(see :mod:`repro.core.tree` for the slot layout):

* the **link modulator** on the link from ``parent(slot)`` down to ``slot``
  (defined for every slot except the root), and
* the **leaf modulator** of a leaf slot.

Two backends implement the same interface:

* :class:`DenseModulatorStore` keeps flat bytearrays -- exact, compact, and
  the default for every functional use.
* :class:`LazySeededStore` derives untouched modulators on demand from a
  seed and keeps only written values in an overlay.  It exists purely so
  the Figure-5/6 benchmarks can stand up 10^7-leaf trees without
  materialising ~600 MB of random bytes; per-operation byte counts and
  client hash counts are identical under both stores (verified by tests),
  because they depend only on tree depth.  DESIGN.md records this as a
  benchmark-scale substitution.
"""

from __future__ import annotations

import abc
import struct

from repro.crypto.rng import RandomSource
from repro.crypto.sha1 import Sha1
from repro.crypto.sha256 import Sha256


class ModulatorStore(abc.ABC):
    """Slot-addressed storage for link and leaf modulators."""

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ValueError("modulator width must be positive")
        self.width = width

    @abc.abstractmethod
    def get_link(self, slot: int) -> bytes:
        """Return the link modulator on the link into ``slot``."""

    @abc.abstractmethod
    def set_link(self, slot: int, value: bytes) -> None:
        """Set the link modulator on the link into ``slot``."""

    @abc.abstractmethod
    def get_leaf(self, slot: int) -> bytes:
        """Return the leaf modulator of leaf ``slot``."""

    @abc.abstractmethod
    def set_leaf(self, slot: int, value: bytes) -> None:
        """Set the leaf modulator of leaf ``slot``."""

    def _check(self, value: bytes) -> bytes:
        if len(value) != self.width:
            raise ValueError(
                f"modulator must be {self.width} bytes, got {len(value)}")
        return bytes(value)


class DenseModulatorStore(ModulatorStore):
    """Flat-bytearray store; authoritative for every functional workload."""

    def __init__(self, width: int) -> None:
        super().__init__(width)
        self._links = bytearray()
        self._leaves = bytearray()

    def _ensure(self, buffer: bytearray, slot: int) -> None:
        needed = (slot + 1) * self.width
        if len(buffer) < needed:
            buffer.extend(b"\x00" * (needed - len(buffer)))

    def get_link(self, slot: int) -> bytes:
        start = slot * self.width
        if start + self.width > len(self._links):
            raise KeyError(f"no link modulator stored for slot {slot}")
        return bytes(self._links[start:start + self.width])

    def set_link(self, slot: int, value: bytes) -> None:
        value = self._check(value)
        self._ensure(self._links, slot)
        self._links[slot * self.width:(slot + 1) * self.width] = value

    def get_leaf(self, slot: int) -> bytes:
        start = slot * self.width
        if start + self.width > len(self._leaves):
            raise KeyError(f"no leaf modulator stored for slot {slot}")
        return bytes(self._leaves[start:start + self.width])

    def set_leaf(self, slot: int, value: bytes) -> None:
        value = self._check(value)
        self._ensure(self._leaves, slot)
        self._leaves[slot * self.width:(slot + 1) * self.width] = value

    def bulk_fill(self, rng: RandomSource, link_slots: range,
                  leaf_slots: range) -> None:
        """Fill contiguous slot ranges with fresh random modulators at once.

        Drawing one large random block is dramatically faster than one
        :meth:`RandomSource.bytes` call per modulator when outsourcing a
        large file.
        """
        if len(link_slots):
            block = rng.bytes(len(link_slots) * self.width)
            self._ensure(self._links, link_slots[-1])
            start = link_slots[0] * self.width
            self._links[start:start + len(block)] = block
        if len(leaf_slots):
            block = rng.bytes(len(leaf_slots) * self.width)
            self._ensure(self._leaves, leaf_slots[-1])
            start = leaf_slots[0] * self.width
            self._leaves[start:start + len(block)] = block


class LazySeededStore(ModulatorStore):
    """Seed-derived store with a write overlay, for benchmark-scale trees.

    Unwritten modulators are ``H(seed || kind || slot)`` truncated to the
    modulator width; any value written (by deletion deltas, balancing, or
    insertion) lands in an overlay dict that shadows the derivation.  The
    initial tree is therefore pseudo-random rather than client-random --
    fine for performance measurement, never used for security claims.
    """

    _LINK = b"L"
    _LEAF = b"F"

    def __init__(self, width: int, seed: bytes) -> None:
        super().__init__(width)
        if width <= 20:
            self._hash_factory = Sha1
        elif width <= 32:
            self._hash_factory = Sha256
        else:
            raise ValueError("lazy store supports widths up to 32 bytes")
        self._seed = bytes(seed)
        self._overlay: dict[tuple[bytes, int], bytes] = {}

    def _derive(self, kind: bytes, slot: int) -> bytes:
        hasher = self._hash_factory()
        hasher.update(self._seed)
        hasher.update(kind)
        hasher.update(struct.pack(">Q", slot))
        return hasher.digest()[:self.width]

    def get_link(self, slot: int) -> bytes:
        return self._overlay.get((self._LINK, slot)) or self._derive(self._LINK, slot)

    def set_link(self, slot: int, value: bytes) -> None:
        self._overlay[(self._LINK, slot)] = self._check(value)

    def get_leaf(self, slot: int) -> bytes:
        return self._overlay.get((self._LEAF, slot)) or self._derive(self._LEAF, slot)

    def set_leaf(self, slot: int, value: bytes) -> None:
        self._overlay[(self._LEAF, slot)] = self._check(value)

    @property
    def overlay_size(self) -> int:
        """Number of modulators that have diverged from the seed derivation."""
        return len(self._overlay)

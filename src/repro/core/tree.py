"""The modulation tree -- Section IV-B of the paper.

Structure
---------

The paper's modulation tree is a *complete* binary tree: every internal
node has exactly two children and all leaves sit on the last two levels.
Exactly this family of shapes is captured by heap numbering: a tree with
``n`` leaves occupies slots ``1 .. 2n-1``, slot ``s`` has children ``2s``
and ``2s+1``, internal nodes are the slots ``< n`` and leaves the slots
``>= n``.  The paper's balancing rules map onto the numbering perfectly:

* the "last leaf at the last level" (deletion, Section IV-D) is slot
  ``2n-1``, its sibling is ``2n-2`` and their parent is ``n-1``;
* the leaf split by insertion (Section IV-E; first leaf of the last level
  in a full tree, otherwise first leaf of the second-to-last level) is
  slot ``n``.

Each non-root slot carries the **link modulator** of the link from its
parent; each leaf slot carries a **leaf modulator**.  A leaf's modulator
list ``M_k`` is the link modulators along the root-to-leaf path followed
by its leaf modulator, and its data key is ``F(K, M_k)``.

This module is pure mechanism: it stores modulators, extracts the views
the protocol ships to the client (the ``MT(k)`` subtree with its
``(n-1)``-cut, the balancing view, the insertion view), applies deletion
deltas, and performs the structural moves.  All *decisions* -- what the
delta values are, what the reassigned leaf modulators must be -- are
client-side computations in :mod:`repro.core.ops`.

Every mutating method returns a write log of ``(kind, slot, old, new)``
tuples so the server can maintain its duplicate-modulator registry and
roll back a transaction that would introduce a duplicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.core.errors import StructureError, UnknownItemError
from repro.core.modstore import DenseModulatorStore, ModulatorStore
from repro.core.modulated_chain import xor_bytes
from repro.crypto.rng import RandomSource

LINK = "link"
LEAF = "leaf"

WriteLog = list[tuple[str, int, Optional[bytes], Optional[bytes]]]


@dataclass(frozen=True)
class CutEntry:
    """One node of the (n-1)-cut ``C``: a sibling of a path node."""

    slot: int
    link_mod: bytes
    is_leaf: bool
    leaf_mod: Optional[bytes] = None


@dataclass(frozen=True)
class MTView:
    """The subtree ``MT(k)`` the server sends for a deletion (Fig. 2).

    ``path_slots`` runs root-first and ends at the leaf being deleted;
    ``path_links`` has one entry per non-root path slot (the link
    modulator from its parent); ``cut`` lists the siblings of the path
    nodes top-down.
    """

    path_slots: tuple[int, ...]
    path_links: tuple[bytes, ...]
    leaf_mod: bytes
    cut: tuple[CutEntry, ...]

    def all_modulators(self) -> list[bytes]:
        """Every modulator in the view, for the distinctness check."""
        modulators = list(self.path_links)
        modulators.append(self.leaf_mod)
        for entry in self.cut:
            modulators.append(entry.link_mod)
            if entry.leaf_mod is not None:
                modulators.append(entry.leaf_mod)
        return modulators


@dataclass(frozen=True)
class PathView:
    """A root-to-leaf path with its modulators (access / insertion)."""

    path_slots: tuple[int, ...]
    path_links: tuple[bytes, ...]
    leaf_mod: bytes

    @property
    def leaf_slot(self) -> int:
        return self.path_slots[-1]

    def modulator_list(self) -> list[bytes]:
        """The ordered list ``M_k`` = path links + leaf modulator."""
        return list(self.path_links) + [self.leaf_mod]


@dataclass(frozen=True)
class BatchView:
    """The union subtree ``MT(S)`` plus balance band for a batched deletion.

    Slot lists are deliberately *not* part of the view: both parties derive
    the node set deterministically from ``(n_leaves, target_slots)`` via
    :meth:`ModulationTree.batch_link_slots` and
    :meth:`ModulationTree.batch_leaf_mod_slots`.  The server therefore
    cannot misrepresent the tree shape, and no slot list travels on the
    wire -- only modulator values do.  ``links[i]`` belongs to the i-th
    derived link slot (slot-ascending), ``leaf_mods[i]`` to the i-th
    derived leaf-modulator slot.

    ``target_slots`` is aligned with the requested item-id order; the
    rebalancing moves are applied in exactly that order.
    """

    n_leaves: int
    target_slots: tuple[int, ...]
    links: tuple[bytes, ...]
    leaf_mods: tuple[bytes, ...]

    def all_modulators(self) -> list[bytes]:
        """Every modulator in the view, for the distinctness check.

        Every entry sits at a distinct ``(kind, slot)`` location by
        construction (the derived slot lists are duplicate-free), so plain
        value distinctness over this list is the full Theorem-2 check.
        """
        return list(self.links) + list(self.leaf_mods)


@dataclass(frozen=True)
class BalanceView:
    """What the client needs for the balancing step of a deletion (Fig. 3).

    ``t`` is the last leaf (slot ``2n-1``), ``s`` its sibling: the path to
    ``t`` with its modulators, plus the link and leaf modulators of ``s``.
    """

    t_path: PathView
    s_slot: int
    s_link_mod: bytes
    s_leaf_mod: bytes


class ItemMap:
    """Bidirectional item-id <-> leaf-slot mapping (dict-backed)."""

    def __init__(self) -> None:
        self._slot_of: dict[int, int] = {}
        self._item_at: dict[int, int] = {}

    def slot_of(self, item_id: int) -> Optional[int]:
        return self._slot_of.get(item_id)

    def item_at(self, slot: int) -> Optional[int]:
        return self._item_at.get(slot)

    def set(self, item_id: int, slot: int) -> None:
        self._slot_of[item_id] = slot
        self._item_at[slot] = item_id

    def move(self, item_id: int, new_slot: int) -> None:
        old_slot = self._slot_of[item_id]
        self._item_at.pop(old_slot, None)
        self.set(item_id, new_slot)

    def remove(self, item_id: int) -> None:
        slot = self._slot_of.pop(item_id, None)
        if slot is not None:
            self._item_at.pop(slot, None)

    def contains(self, item_id: int) -> bool:
        return item_id in self._slot_of


class ArithmeticItemMap(ItemMap):
    """Item map with an implicit initial layout plus an exception overlay.

    At adoption time item ``base + i`` sits at slot ``n0 + i``; only items
    that move (balancing) or die (deletion) are recorded.  This keeps a
    10^7-leaf benchmark tree at O(operations) memory instead of O(n) --
    the mapping analogue of :class:`repro.core.modstore.LazySeededStore`.
    """

    def __init__(self, base_item_id: int, n0: int) -> None:
        super().__init__()
        self._base = base_item_id
        self._n0 = n0
        self._overridden_items: set[int] = set()
        self._vacated_slots: set[int] = set()

    def _natural_slot(self, item_id: int) -> Optional[int]:
        index = item_id - self._base
        if 0 <= index < self._n0:
            return self._n0 + index
        return None

    def slot_of(self, item_id: int) -> Optional[int]:
        if item_id in self._overridden_items:
            return self._slot_of.get(item_id)
        return self._natural_slot(item_id)

    def item_at(self, slot: int) -> Optional[int]:
        if slot in self._vacated_slots:
            return self._item_at.get(slot)
        index = slot - self._n0
        if 0 <= index < self._n0:
            return self._base + index
        return self._item_at.get(slot)

    def set(self, item_id: int, slot: int) -> None:
        self._overridden_items.add(item_id)
        self._slot_of[item_id] = slot
        self._vacated_slots.add(slot)
        self._item_at[slot] = item_id

    def move(self, item_id: int, new_slot: int) -> None:
        old_slot = self.slot_of(item_id)
        if old_slot is not None:
            self._vacated_slots.add(old_slot)
            self._item_at.pop(old_slot, None)
        self.set(item_id, new_slot)

    def remove(self, item_id: int) -> None:
        slot = self.slot_of(item_id)
        self._overridden_items.add(item_id)
        self._slot_of.pop(item_id, None)
        if slot is not None:
            self._vacated_slots.add(slot)
            self._item_at.pop(slot, None)

    def contains(self, item_id: int) -> bool:
        return self.slot_of(item_id) is not None


class ModulationTree:
    """Server-side modulation tree state over a :class:`ModulatorStore`."""

    def __init__(self, store: ModulatorStore,
                 item_map: ItemMap | None = None) -> None:
        self._store = store
        self._n = 0
        self._map = item_map if item_map is not None else ItemMap()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def build_random(cls, item_ids: list[int], width: int, rng: RandomSource,
                     store: ModulatorStore | None = None) -> "ModulationTree":
        """Build a fresh tree with random modulators for ``item_ids``.

        Used by the client when outsourcing a file: leaf slot ``n + i``
        holds item ``item_ids[i]``.
        """
        n = len(item_ids)
        store = store if store is not None else DenseModulatorStore(width)
        tree = cls(store)
        tree._n = n
        if n == 0:
            return tree
        if isinstance(store, DenseModulatorStore):
            store.bulk_fill(rng, link_slots=range(2, 2 * n),
                            leaf_slots=range(n, 2 * n))
        else:
            for slot in range(2, 2 * n):
                store.set_link(slot, rng.bytes(width))
            for slot in range(n, 2 * n):
                store.set_leaf(slot, rng.bytes(width))
        for i, item_id in enumerate(item_ids):
            tree._map.set(item_id, n + i)
        return tree

    @classmethod
    def adopt(cls, store: ModulatorStore, n_leaves: int,
              item_ids: list[int]) -> "ModulationTree":
        """Wrap an existing store (e.g. one received from the client).

        ``item_ids[i]`` is the item at leaf slot ``n_leaves + i``.
        """
        if len(item_ids) != n_leaves:
            raise ValueError("one item id per leaf required")
        tree = cls(store)
        tree._n = n_leaves
        for i, item_id in enumerate(item_ids):
            tree._map.set(item_id, n_leaves + i)
        return tree

    @classmethod
    def wrap(cls, store: ModulatorStore, n_leaves: int,
             item_map: ItemMap) -> "ModulationTree":
        """Wrap a store and item map that already hold a tree's state.

        The storage-engine door: paged stores materialise nodes on
        demand, so -- unlike :meth:`adopt` -- nothing is enumerated or
        copied here; the tree is usable after O(1) work regardless of
        ``n_leaves``.
        """
        tree = cls(store, item_map=item_map)
        tree._n = n_leaves
        return tree

    @classmethod
    def adopt_arithmetic(cls, store: ModulatorStore, n_leaves: int,
                         base_item_id: int) -> "ModulationTree":
        """Wrap a store with the implicit item layout ``base+i -> n+i``.

        Benchmark-scale companion of :meth:`adopt`: no per-item state is
        created, so a lazily-seeded 10^7-leaf tree costs O(1) memory.
        """
        tree = cls(store, item_map=ArithmeticItemMap(base_item_id, n_leaves))
        tree._n = n_leaves
        return tree

    # ------------------------------------------------------------------
    # Shape and lookup
    # ------------------------------------------------------------------

    @property
    def leaf_count(self) -> int:
        return self._n

    @property
    def store(self) -> ModulatorStore:
        return self._store

    @property
    def width(self) -> int:
        return self._store.width

    def is_leaf(self, slot: int) -> bool:
        if not 1 <= slot <= 2 * self._n - 1:
            raise StructureError(f"slot {slot} outside tree of {self._n} leaves")
        return slot >= self._n

    def depth(self) -> int:
        """Height of the tree (number of links on the longest path)."""
        return (2 * self._n - 1).bit_length() - 1 if self._n else 0

    def slot_of_item(self, item_id: int) -> int:
        slot = self._map.slot_of(item_id)
        if slot is None:
            raise UnknownItemError(f"unknown item id {item_id}")
        return slot

    def item_of_slot(self, slot: int) -> Optional[int]:
        return self._map.item_at(slot)

    def item_ids(self) -> list[int]:
        """All live item ids, in leaf-slot order."""
        ids = []
        for slot in range(self._n, 2 * self._n):
            item_id = self._map.item_at(slot)
            if item_id is not None:
                ids.append(item_id)
        return ids

    @staticmethod
    def path_slots(slot: int) -> list[int]:
        """Heap slots on the path from the root (slot 1) down to ``slot``."""
        path = []
        while slot >= 1:
            path.append(slot)
            slot //= 2
        path.reverse()
        return path

    @staticmethod
    def slot_path(slot: int) -> str:
        """Branch directions from the root to ``slot``, as a bit string.

        Heap numbering makes the slot number *itself* the path encoding:
        after the leading 1 bit, each bit of ``slot`` is one branch
        decision (0 = left child ``2s``, 1 = right child ``2s+1``).  So
        ``slot_path(11) == "011"`` -- left, right, right -- and storage
        engines indexing nodes by ``(file_id, slot)`` are indexing by
        ``(file_id, node_path)`` for free.
        """
        if slot < 1:
            raise StructureError(f"slot {slot} has no root path")
        return bin(slot)[3:]

    @staticmethod
    def union_path_slots(target_slots: Sequence[int]) -> list[int]:
        """Sorted union of the root-to-leaf paths of ``target_slots``."""
        seen: set[int] = set()
        for slot in target_slots:
            while slot >= 1 and slot not in seen:
                seen.add(slot)
                slot //= 2
        return sorted(seen)

    @staticmethod
    def union_cut_slots(target_slots: Sequence[int]) -> list[int]:
        """Sorted ``(n-k)``-cut of the union path: its off-path children.

        Generalises the single-deletion ``(n-1)``-cut: a slot is in the
        cut iff it is not on any target's path but its parent is.  One
        delta per cut node compensates the key change for *every* leaf
        outside the batch at once (Eq. 5 applied to the union).
        """
        path: set[int] = set()
        for slot in target_slots:
            while slot >= 1 and slot not in path:
                path.add(slot)
                slot //= 2
        return sorted(s ^ 1 for s in path if s >= 2 and (s ^ 1) not in path)

    @staticmethod
    def batch_band_slots(n_leaves: int, batch_size: int) -> range:
        """Balance band: every slot the batch's rebalancing moves touch.

        Move ``i`` (tree size ``m = n - i``) reads or writes ``t = 2m-1``,
        ``s = 2m-2`` and their parent ``p = m-1``; over ``batch_size``
        moves the leaves involved are exactly the last ``2k`` slots (the
        ``p`` slots are reached through the ancestor closure).
        """
        if n_leaves <= 0:
            return range(0)
        return range(max(2, 2 * (n_leaves - batch_size)), 2 * n_leaves)

    @classmethod
    def batch_link_slots(cls, n_leaves: int,
                         target_slots: Sequence[int]) -> list[int]:
        """Sorted link slots of the batch view (derived, never shipped).

        The node set is the ancestor closure of ``targets + band`` plus
        the union cut; every member except the root carries one link
        modulator.  Closure of the cut is free: cut parents are path
        nodes by definition.
        """
        seen: set[int] = set()
        band = cls.batch_band_slots(n_leaves, len(target_slots))
        for start in (*target_slots, *band):
            slot = start
            while slot >= 1 and slot not in seen:
                seen.add(slot)
                slot //= 2
        seen.update(cls.union_cut_slots(target_slots))
        return sorted(s for s in seen if s >= 2)

    @classmethod
    def batch_leaf_mod_slots(cls, n_leaves: int,
                             target_slots: Sequence[int]) -> list[int]:
        """Sorted slots whose leaf modulator the batch view must carry.

        Targets (decrypt-verification) plus the band's leaf slots (the
        rebalancing mirror); cut leaf modulators are *not* needed -- the
        deltas only use cut link modulators.
        """
        slots = set(target_slots)
        for slot in cls.batch_band_slots(n_leaves, len(target_slots)):
            if slot >= n_leaves:
                slots.add(slot)
        return sorted(slots)

    # ------------------------------------------------------------------
    # Views shipped to the client
    # ------------------------------------------------------------------

    def path_view(self, slot: int) -> PathView:
        """Path + modulators for access, modification, or key derivation."""
        if not self.is_leaf(slot):
            raise StructureError(f"slot {slot} is not a leaf")
        slots = self.path_slots(slot)
        links = tuple(self._store.get_link(s) for s in slots[1:])
        return PathView(path_slots=tuple(slots), path_links=links,
                        leaf_mod=self._store.get_leaf(slot))

    def mt_view(self, slot: int) -> MTView:
        """The deletion subtree ``MT(k)``: path to ``slot`` plus its cut."""
        path = self.path_view(slot)
        cut = []
        for path_slot in path.path_slots[1:]:
            sibling = path_slot ^ 1
            sibling_is_leaf = self.is_leaf(sibling)
            cut.append(CutEntry(
                slot=sibling,
                link_mod=self._store.get_link(sibling),
                is_leaf=sibling_is_leaf,
                leaf_mod=self._store.get_leaf(sibling) if sibling_is_leaf else None,
            ))
        return MTView(path_slots=path.path_slots, path_links=path.path_links,
                      leaf_mod=path.leaf_mod, cut=tuple(cut))

    def balance_view(self) -> Optional[BalanceView]:
        """Balancing data for the current shape (``None`` for n < 2)."""
        n = self._n
        if n < 2:
            return None
        t_slot = 2 * n - 1
        s_slot = 2 * n - 2
        return BalanceView(
            t_path=self.path_view(t_slot),
            s_slot=s_slot,
            s_link_mod=self._store.get_link(s_slot),
            s_leaf_mod=self._store.get_leaf(s_slot),
        )

    def batch_view(self, target_slots: Sequence[int]) -> BatchView:
        """The batched-deletion view ``MT(S)`` plus balance band.

        One round trip replaces ``k`` sequential challenge exchanges: the
        view carries every modulator the client needs to compute the
        union-cut deltas *and* simulate all ``k`` rebalancing moves
        locally.
        """
        targets = tuple(target_slots)
        if len(set(targets)) != len(targets):
            raise StructureError("batch targets must be distinct")
        for slot in targets:
            if not self.is_leaf(slot):
                raise StructureError(f"slot {slot} is not a leaf")
        n = self._n
        links = tuple(self._store.get_link(s)
                      for s in self.batch_link_slots(n, targets))
        leaf_mods = tuple(self._store.get_leaf(s)
                          for s in self.batch_leaf_mod_slots(n, targets))
        return BatchView(n_leaves=n, target_slots=targets, links=links,
                         leaf_mods=leaf_mods)

    def insert_view(self) -> Optional[PathView]:
        """Path to the leaf that an insertion will split (``None`` if empty)."""
        if self._n == 0:
            return None
        return self.path_view(self._n)

    # ------------------------------------------------------------------
    # Mutations (server side)
    # ------------------------------------------------------------------

    def apply_deltas(self, cut_slots: list[int], deltas: list[bytes]) -> WriteLog:
        """Apply ``delta(c)`` to each cut node ``c`` (Eqs. 6 and 7).

        Internal cut nodes have both child-link modulators XORed with the
        delta; leaf cut nodes have their leaf modulator XORed.
        """
        if len(cut_slots) != len(deltas):
            raise StructureError("one delta per cut node required")
        log: WriteLog = []
        for slot, delta in zip(cut_slots, deltas):
            if self.is_leaf(slot):
                old = self._store.get_leaf(slot)
                new = xor_bytes(old, delta)
                self._store.set_leaf(slot, new)
                log.append((LEAF, slot, old, new))
            else:
                for child in (2 * slot, 2 * slot + 1):
                    old = self._store.get_link(child)
                    new = xor_bytes(old, delta)
                    self._store.set_link(child, new)
                    log.append((LINK, child, old, new))
        return log

    def delete_leaf(self, slot_k: int, x_s_prime: Optional[bytes],
                    dest_link: Optional[bytes],
                    dest_leaf: Optional[bytes]) -> WriteLog:
        """Remove leaf ``slot_k`` and rebalance (Section IV-D).

        ``x_s_prime`` is the recomputed leaf modulator for ``s`` (Eq. 8),
        required whenever the tree has at least two leaves.  ``dest_leaf``
        is the recomputed leaf modulator for ``t`` at its new location
        (Eq. 9) and ``dest_link`` the fresh link modulator chosen by the
        client; both are ``None`` when ``k`` *is* the last leaf ``t`` (the
        paper's "step 2 is performed only if node t is not node k"), and
        ``dest_link`` is additionally ``None`` when ``t`` lands on the
        root or takes over the collapsed parent slot, which keeps its
        existing incoming link.
        """
        if not self.is_leaf(slot_k):
            raise StructureError(f"slot {slot_k} is not a leaf")
        n = self._n
        log: WriteLog = []

        t_slot = 2 * n - 1
        s_slot = 2 * n - 2
        p_slot = n - 1

        # Validate the full argument shape before mutating anything.
        if n > 1:
            if x_s_prime is None:
                raise StructureError("balancing value x_s' required for n >= 2")
            if slot_k != t_slot:
                if dest_leaf is None:
                    raise StructureError(
                        "balancing value x_t' required when k != t")
                dest = p_slot if slot_k == s_slot else slot_k
                if dest == p_slot or dest == 1:
                    if dest_link is not None:
                        raise StructureError("dest link must be omitted when "
                                             "t inherits a slot's link")
                elif dest_link is None:
                    raise StructureError("fresh link modulator required")

        item_k = self._map.item_at(slot_k)
        if item_k is not None:
            self._map.remove(item_k)

        if n == 1:
            log.append((LEAF, 1, self._store.get_leaf(1), None))
            self._n = 0
            return log

        t_item = self._map.item_at(t_slot)
        s_item = self._map.item_at(s_slot)

        # Step 1 (Fig. 3): remove t; s takes over the parent slot, keeping
        # the parent's incoming link modulator and adopting x_s'.
        log.append((LINK, s_slot, self._store.get_link(s_slot), None))
        log.append((LEAF, s_slot, self._store.get_leaf(s_slot), None))
        log.append((LINK, t_slot, self._store.get_link(t_slot), None))
        log.append((LEAF, t_slot, self._store.get_leaf(t_slot), None))
        old_p_leaf = None  # p was internal; it had no leaf modulator.
        self._store.set_leaf(p_slot, x_s_prime)
        log.append((LEAF, p_slot, old_p_leaf, x_s_prime))
        if s_item is not None:
            self._map.move(s_item, p_slot)
        self._n = n - 1

        # Step 2: move t into k's place, unless k was t itself.
        if slot_k != t_slot:
            dest = p_slot if slot_k == s_slot else slot_k
            if dest_leaf is None:
                raise StructureError("balancing value x_t' required when k != t")
            if dest == p_slot or dest == 1:
                # t takes over a slot whose incoming link (if any) is kept.
                if dest_link is not None:
                    raise StructureError(
                        "dest link must be omitted when t inherits a slot's link")
            else:
                if dest_link is None:
                    raise StructureError("fresh link modulator required")
                old_link = self._store.get_link(dest)
                self._store.set_link(dest, dest_link)
                log.append((LINK, dest, old_link, dest_link))
            old_leaf = self._store.get_leaf(dest) if dest == p_slot else (
                self._store.get_leaf(dest))
            self._store.set_leaf(dest, dest_leaf)
            log.append((LEAF, dest, old_leaf, dest_leaf))
            if t_item is not None:
                self._map.move(t_item, dest)
        return log

    def insert_leaf(self, item_id: int, t_new_link: Optional[bytes],
                    t_new_leaf: Optional[bytes], e_link: Optional[bytes],
                    e_leaf: bytes) -> WriteLog:
        """Insert a new leaf ``e`` for ``item_id`` (Section IV-E).

        For a non-empty tree the first shallowest leaf ``t'`` (slot ``n``)
        is split: ``t'`` moves to slot ``2n`` with fresh link modulator
        ``t_new_link`` and reassigned leaf modulator ``t_new_leaf``; the
        new leaf ``e`` lands on slot ``2n+1`` with fresh ``e_link`` and
        ``e_leaf``.  For an empty tree the new leaf is the root and only
        ``e_leaf`` applies.
        """
        if self._map.contains(item_id):
            raise StructureError(f"item id {item_id} already present")
        log: WriteLog = []
        n = self._n
        if n == 0:
            self._store.set_leaf(1, e_leaf)
            log.append((LEAF, 1, None, e_leaf))
            self._map.set(item_id, 1)
            self._n = 1
            return log

        if t_new_link is None or t_new_leaf is None or e_link is None:
            raise StructureError("split insertion requires all three modulators")
        t_slot = n
        t_item = self._map.item_at(t_slot)
        old_t_leaf = self._store.get_leaf(t_slot)

        self._store.set_link(2 * n, t_new_link)
        log.append((LINK, 2 * n, None, t_new_link))
        self._store.set_leaf(2 * n, t_new_leaf)
        log.append((LEAF, 2 * n, None, t_new_leaf))
        self._store.set_link(2 * n + 1, e_link)
        log.append((LINK, 2 * n + 1, None, e_link))
        self._store.set_leaf(2 * n + 1, e_leaf)
        log.append((LEAF, 2 * n + 1, None, e_leaf))
        # Slot n becomes internal: its leaf modulator ceases to exist.
        log.append((LEAF, t_slot, old_t_leaf, None))

        if t_item is not None:
            self._map.move(t_item, 2 * n)
        self._map.set(item_id, 2 * n + 1)
        self._n = n + 1
        return log

    def rollback(self, log: WriteLog) -> None:
        """Undo the store writes of a failed transaction (reverse order).

        Only modulator values are restored; callers roll back shape and
        item-map changes by re-running the forward transaction after the
        client retries, so this is used before any shape change is made
        (delta application), which is where duplicate detection happens.
        """
        for kind, slot, old, _new in reversed(log):
            if old is None:
                continue
            if kind == LINK:
                self._store.set_link(slot, old)
            else:
                self._store.set_leaf(slot, old)

    # ------------------------------------------------------------------
    # Whole-tree enumeration (outsourcing / whole-file fetch)
    # ------------------------------------------------------------------

    def iter_modulators(self) -> Iterator[tuple[str, int, bytes]]:
        """Yield every modulator in the tree as ``(kind, slot, value)``."""
        n = self._n
        for slot in range(2, 2 * n):
            yield LINK, slot, self._store.get_link(slot)
        for slot in range(n, 2 * n):
            yield LEAF, slot, self._store.get_leaf(slot)

    def modulator_count(self) -> int:
        """Number of modulators in the tree: ``2n-2`` links + ``n`` leaves."""
        return 3 * self._n - 2 if self._n else 0

    def transfer_size_bytes(self) -> int:
        """Bytes needed to ship every modulator (whole-file fetch overhead)."""
        return self.modulator_count() * self._store.width

"""Two-level key management: the meta modulation tree (Section V).

Master keys of all files become the data items of a *meta file*, itself
protected by a modulation tree under a single higher-level **control
key**.  The client then stores only control keys, no matter how many
files it owns:

* accessing a file first accesses its master key in the meta tree, then
  the file's own tree;
* deleting a master key from the meta tree makes the *whole file*
  unrecoverable (assured whole-file deletion);
* deleting a data item rotates the file's master key, which must then be
  *assuredly replaced* in the meta tree.

The paper says the second step is "modifying the master key of the file
in the meta modulation tree".  A plain in-place modify re-encrypts under
the *same* meta data key -- but the threat model's server keeps every old
ciphertext, so the old master key ``K`` (and with it the deleted item)
would stay recoverable once the meta data key leaks with the device.  The
replacement here is therefore an assured *delete + insert* of the meta
item, which rotates the control key exactly like any other deletion; the
difference is measured by the two-level ablation benchmark and the attack
is regression-tested in ``tests/security``.
"""

from __future__ import annotations

import struct

from repro.client.client import AssuredDeletionClient
from repro.core.errors import IntegrityError, UnknownItemError


def encode_master_key_record(file_id: int, master_key: bytes) -> bytes:
    """Meta-item payload: the owning file id plus its master key."""
    return struct.pack(">QH", file_id, len(master_key)) + master_key


def decode_master_key_record(payload: bytes) -> tuple[int, bytes]:
    """Inverse of :func:`encode_master_key_record` (validating)."""
    if len(payload) < 10:
        raise IntegrityError("meta item too short to hold a master key")
    file_id, key_length = struct.unpack(">QH", payload[:10])
    key = payload[10:]
    if len(key) != key_length:
        raise IntegrityError("meta item key length mismatch")
    return file_id, key


class MetaKeyManager:
    """Manages one meta file holding the master keys of a file group."""

    def __init__(self, client: AssuredDeletionClient, meta_file_id: int,
                 control_key_name: str) -> None:
        self._client = client
        self._meta_file_id = meta_file_id
        self._control_key_name = control_key_name
        self._meta_item_of_file: dict[int, int] = {}
        # The mapping file -> meta item id is bookkeeping, not key
        # material: it reveals nothing an attacker with the server does
        # not already have.  It lives client-side for simplicity.

    @property
    def control_key_name(self) -> str:
        return self._control_key_name

    @property
    def meta_file_id(self) -> int:
        return self._meta_file_id

    def initialize(self) -> None:
        """Create the empty meta file and store the fresh control key."""
        control_key = self._client.outsource(self._meta_file_id, [])
        self._client.keystore.put(self._control_key_name, control_key)

    def _control_key(self) -> bytes:
        return self._client.keystore.get(self._control_key_name)

    def _set_control_key(self, new_key: bytes) -> None:
        self._client.keystore.shred(self._control_key_name)
        self._client.keystore.put(self._control_key_name, new_key)

    def managed_file_ids(self) -> list[int]:
        return sorted(self._meta_item_of_file)

    def meta_item_of(self, file_id: int) -> int:
        """The meta-tree item currently holding ``file_id``'s master key."""
        meta_item = self._meta_item_of_file.get(file_id)
        if meta_item is None:
            raise UnknownItemError(f"file {file_id} is not registered")
        return meta_item

    def register(self, file_id: int, master_key: bytes) -> None:
        """Outsource a new file's master key into the meta tree."""
        if file_id in self._meta_item_of_file:
            raise IntegrityError(f"file {file_id} already registered")
        payload = encode_master_key_record(file_id, master_key)
        meta_item = self._client.insert(self._meta_file_id,
                                        self._control_key(), payload)
        self._meta_item_of_file[file_id] = meta_item

    def master_key(self, file_id: int) -> bytes:
        """Retrieve a file's master key through the meta tree."""
        meta_item = self._meta_item_of_file.get(file_id)
        if meta_item is None:
            raise UnknownItemError(f"file {file_id} is not registered")
        payload = self._client.access(self._meta_file_id, self._control_key(),
                                      meta_item)
        stored_file_id, key = decode_master_key_record(payload)
        if stored_file_id != file_id:
            raise IntegrityError("meta tree returned a key for the wrong file")
        return key

    def replace_master_key(self, file_id: int, new_master_key: bytes) -> None:
        """Assuredly replace a file's master key after an item deletion.

        Delete-then-insert: the old meta item (and with it the old master
        key) becomes unrecoverable, and the control key rotates.
        """
        meta_item = self._meta_item_of_file.get(file_id)
        if meta_item is None:
            raise UnknownItemError(f"file {file_id} is not registered")
        new_control = self._client.delete(self._meta_file_id,
                                          self._control_key(), meta_item)
        self._set_control_key(new_control)
        payload = encode_master_key_record(file_id, new_master_key)
        new_item = self._client.insert(self._meta_file_id,
                                       self._control_key(), payload)
        self._meta_item_of_file[file_id] = new_item

    def remove(self, file_id: int) -> None:
        """Assured whole-file deletion: shred the file's master key.

        After this the file's every item is unrecoverable regardless of
        what the server retains; dropping the server-side ciphertexts is
        mere space reclamation.
        """
        meta_item = self._meta_item_of_file.pop(file_id, None)
        if meta_item is None:
            raise UnknownItemError(f"file {file_id} is not registered")
        new_control = self._client.delete(self._meta_file_id,
                                          self._control_key(), meta_item)
        self._set_control_key(new_control)

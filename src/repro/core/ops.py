"""Client-side computations of the key modulation protocol.

Everything in this module runs on the *client*: it holds the master key,
so it is the only party able to evaluate the chain.  The functions are
pure -- they take views received from the server plus key material and
return the values to send back -- which is what makes them directly
testable against the paper's Theorems 1 and 2.

* :func:`verify_distinct_modulators` -- the client's refusal rule ("the
  client expects all modulators in MT(k) to have different values").
* :func:`verify_mt_structure` -- shape check that the claimed path and cut
  really form a root-to-leaf path with its (n-1)-cut.
* :func:`compute_deltas` -- the ``delta(c)`` values of Eq. 5.
* :func:`compute_balance_values` -- Eqs. 8 and 9 evaluated against the
  post-delta tree under the new master key (the two formulations agree;
  see DESIGN.md section 3, ablation 4 discussion).
* :func:`compute_insertion` -- the Section IV-E leaf split.
* :func:`derive_all_keys` -- whole-file key derivation with shared
  prefixes (Table III's computation-overhead numerator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.errors import DuplicateModulatorError, StructureError
from repro.core.modulated_chain import ChainEngine, releaf_modulator, xor_bytes
from repro.core.tree import BalanceView, MTView, PathView
from repro.crypto.rng import RandomSource


@dataclass(frozen=True)
class DeletionCommit:
    """Client -> server payload completing a deletion."""

    cut_slots: tuple[int, ...]
    deltas: tuple[bytes, ...]
    x_s_prime: Optional[bytes]
    dest_link: Optional[bytes]
    dest_leaf: Optional[bytes]


@dataclass(frozen=True)
class InsertionCommit:
    """Client -> server payload completing an insertion.

    ``chain_output`` (the new item's full chain value) stays on the client;
    only the modulators travel.
    """

    t_new_link: Optional[bytes]
    t_new_leaf: Optional[bytes]
    e_link: Optional[bytes]
    e_leaf: bytes
    chain_output: bytes


def verify_distinct_modulators(modulators: Sequence[bytes]) -> None:
    """Reject any repeated modulator value (Theorem 2, case ii defence)."""
    if len(set(modulators)) != len(modulators):
        raise DuplicateModulatorError(
            "received subtree contains duplicate modulators; refusing to "
            "operate on it")


def verify_path_structure(view: PathView) -> None:
    """Check that the slots really form a root-to-leaf heap path."""
    slots = view.path_slots
    if not slots or slots[0] != 1:
        raise StructureError("path must start at the root slot")
    for parent, child in zip(slots, slots[1:]):
        if child not in (2 * parent, 2 * parent + 1):
            raise StructureError(f"slot {child} is not a child of {parent}")
    if len(view.path_links) != len(slots) - 1:
        raise StructureError("one link modulator per non-root path slot required")


def verify_mt_structure(view: MTView) -> None:
    """Check path shape and that each cut entry is the matching sibling."""
    verify_path_structure(PathView(view.path_slots, view.path_links,
                                   view.leaf_mod))
    if len(view.cut) != len(view.path_slots) - 1:
        raise StructureError("one cut node per non-root path slot required")
    for path_slot, entry in zip(view.path_slots[1:], view.cut):
        if entry.slot != (path_slot ^ 1):
            raise StructureError(
                f"cut slot {entry.slot} is not the sibling of {path_slot}")
        if entry.is_leaf and entry.leaf_mod is None:
            raise StructureError("leaf cut entries must carry a leaf modulator")


def chain_output_for_path(engine: ChainEngine, master_key: bytes,
                          view: PathView) -> bytes:
    """Evaluate ``F(K, M_k)`` for a received path."""
    return engine.evaluate(master_key, view.modulator_list())


def compute_deltas(engine: ChainEngine, old_key: bytes, new_key: bytes,
                   mt: MTView) -> tuple[tuple[int, ...], tuple[bytes, ...]]:
    """Compute ``delta(c) = F(K, M_c) xor F(K', M_c)`` for the whole cut.

    Shares one prefix sweep along ``P(k)`` for each key, so the entire cut
    costs ``O(log n)`` hashes exactly as Section IV-C argues.
    """
    old_prefixes = engine.prefix_values(old_key, mt.path_links)
    new_prefixes = engine.prefix_values(new_key, mt.path_links)
    cut_slots = []
    deltas = []
    for depth, entry in enumerate(mt.cut):
        # The cut node at this depth shares the first ``depth`` path links,
        # then diverges through its own incoming link modulator.
        old_value = engine.step(old_prefixes[depth], entry.link_mod)
        new_value = engine.step(new_prefixes[depth], entry.link_mod)
        cut_slots.append(entry.slot)
        deltas.append(xor_bytes(old_value, new_value))
    return tuple(cut_slots), tuple(deltas)


def _post_delta(value: bytes, slot: int, kind: str,
                delta_by_cut_slot: dict[int, bytes]) -> bytes:
    """Value of a modulator after the server applies the deltas.

    ``delta(c)`` lands on the *child links* of an internal cut node and on
    the *leaf modulator* of a leaf cut node, so a link into ``slot`` moves
    iff ``parent(slot)`` is a cut node, and a leaf modulator at ``slot``
    moves iff ``slot`` itself is a cut node.
    """
    if kind == "link":
        delta = delta_by_cut_slot.get(slot // 2)
    else:
        delta = delta_by_cut_slot.get(slot)
    return xor_bytes(value, delta) if delta is not None else value


def compute_balance_values(
        engine: ChainEngine, new_key: bytes, mt: MTView,
        balance: Optional[BalanceView],
        cut_slots: Sequence[int], deltas: Sequence[bytes],
        rng: RandomSource,
) -> tuple[Optional[bytes], Optional[bytes], Optional[bytes]]:
    """Equations 8 and 9: leaf-modulator reassignments for rebalancing.

    Evaluated against the tree *as it will stand after the deltas are
    applied*, under the new master key alone: the client locally applies
    its own deltas to the received balance view, then uses the identity of
    :func:`repro.core.modulated_chain.releaf_modulator`.  Returns
    ``(x_s_prime, dest_link, dest_leaf)`` matching
    :meth:`repro.core.tree.ModulationTree.delete_leaf`.
    """
    if balance is None:
        return None, None, None

    slot_k = mt.path_slots[-1]
    t_slot = balance.t_path.leaf_slot
    s_slot = balance.s_slot
    delta_by_cut_slot = dict(zip(cut_slots, deltas))

    t_links = [
        _post_delta(link, slot, "link", delta_by_cut_slot)
        for slot, link in zip(balance.t_path.path_slots[1:],
                              balance.t_path.path_links)
    ]
    t_leaf = _post_delta(balance.t_path.leaf_mod, t_slot, "leaf",
                         delta_by_cut_slot)
    s_link = _post_delta(balance.s_link_mod, s_slot, "link", delta_by_cut_slot)
    s_leaf = _post_delta(balance.s_leaf_mod, s_slot, "leaf", delta_by_cut_slot)

    prefixes = engine.prefix_values(new_key, t_links)
    parent_value = prefixes[-2]  # F(K', M_p): chain value at t's parent p.

    # Eq. 8: s takes over p's slot; its prefix shortens by one link.
    old_prefix_s = engine.step(parent_value, s_link)
    x_s_prime = releaf_modulator(parent_value, old_prefix_s, s_leaf)

    if slot_k == t_slot:
        return x_s_prime, None, None

    old_prefix_t = prefixes[-1]  # F(K', M_t links): value before t's leaf mod.

    if slot_k == s_slot:
        # t takes over the collapsed parent slot, inheriting its incoming
        # link; its new prefix is the chain value at p.
        dest_leaf = releaf_modulator(parent_value, old_prefix_t, t_leaf)
        return x_s_prime, None, dest_leaf

    # Eq. 9: t lands on k's old slot under a fresh link modulator chosen by
    # the client.  P(k)'s link modulators are never delta-adjusted (the cut
    # nodes' children are all off-path), so the received values are current.
    dest_link = rng.bytes(engine.digest_size)
    parent_k_value = engine.evaluate(new_key, mt.path_links[:-1])
    new_prefix_t = engine.step(parent_k_value, dest_link)
    dest_leaf = releaf_modulator(new_prefix_t, old_prefix_t, t_leaf)
    return x_s_prime, dest_link, dest_leaf


def compute_insertion(engine: ChainEngine, master_key: bytes,
                      insert_path: Optional[PathView],
                      rng: RandomSource) -> InsertionCommit:
    """Section IV-E: split the shallowest leaf and key the new leaf ``e``."""
    width = engine.digest_size
    if insert_path is None:
        # Empty tree: the new leaf is the root; M_e = <x_e>.
        e_leaf = rng.bytes(width)
        chain_output = engine.evaluate(master_key, [e_leaf])
        return InsertionCommit(t_new_link=None, t_new_leaf=None, e_link=None,
                               e_leaf=e_leaf, chain_output=chain_output)

    verify_path_structure(insert_path)
    verify_distinct_modulators(insert_path.modulator_list())
    prefix_value = engine.evaluate(master_key, insert_path.path_links)

    t_new_link = rng.bytes(width)
    new_prefix_t = engine.step(prefix_value, t_new_link)
    t_new_leaf = releaf_modulator(new_prefix_t, prefix_value,
                                  insert_path.leaf_mod)

    e_link = rng.bytes(width)
    e_leaf = rng.bytes(width)
    chain_output = engine.step(engine.step(prefix_value, e_link), e_leaf)
    return InsertionCommit(t_new_link=t_new_link, t_new_leaf=t_new_leaf,
                           e_link=e_link, e_leaf=e_leaf,
                           chain_output=chain_output)


def derive_all_keys(engine: ChainEngine, master_key: bytes, n_leaves: int,
                    links: Sequence[Optional[bytes]],
                    leaves: Sequence[Optional[bytes]]) -> dict[int, bytes]:
    """Derive every leaf's chain output from a full tree snapshot.

    ``links[slot]`` / ``leaves[slot]`` are slot-indexed (entries below the
    first valid slot are ignored).  Prefix values are shared down the tree,
    so the whole file costs ``3n - 2`` hashes rather than ``n log n`` --
    this is the numerator of Table III's computation-overhead ratio.
    """
    if n_leaves == 0:
        return {}
    total = 2 * n_leaves - 1
    values: list[Optional[bytes]] = [None] * (total + 1)
    values[1] = engine.pad_key(master_key)
    outputs: dict[int, bytes] = {}

    # Level-order traversal: every slot on one level depends only on the
    # previous level, so each level is one batched step_many call -- a
    # large constant-factor win for whole-file fetches without changing
    # the 3n-2 hash count.
    level_start = 2
    while level_start <= total:
        level_end = min(2 * level_start - 1, total)
        slots = range(level_start, level_end + 1)
        level_links = []
        parent_values = []
        for slot in slots:
            link = links[slot]
            if link is None:
                raise StructureError(f"missing link modulator for slot {slot}")
            level_links.append(link)
            parent_values.append(values[slot // 2])
        for slot, value in zip(slots, engine.step_many(parent_values,
                                                       level_links)):
            values[slot] = value
        level_start = 2 * level_start

    leaf_slots = range(n_leaves, total + 1)
    leaf_mods = []
    for slot in leaf_slots:
        leaf = leaves[slot]
        if leaf is None:
            raise StructureError(f"missing leaf modulator for slot {slot}")
        leaf_mods.append(leaf)
    leaf_values = [values[slot] for slot in leaf_slots]
    for slot, output in zip(leaf_slots, engine.step_many(leaf_values,
                                                         leaf_mods)):
        outputs[slot] = output
    return outputs

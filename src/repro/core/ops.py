"""Client-side computations of the key modulation protocol.

Everything in this module runs on the *client*: it holds the master key,
so it is the only party able to evaluate the chain.  The functions are
pure -- they take views received from the server plus key material and
return the values to send back -- which is what makes them directly
testable against the paper's Theorems 1 and 2.

* :func:`verify_distinct_modulators` -- the client's refusal rule ("the
  client expects all modulators in MT(k) to have different values").
* :func:`verify_mt_structure` -- shape check that the claimed path and cut
  really form a root-to-leaf path with its (n-1)-cut.
* :func:`compute_deltas` -- the ``delta(c)`` values of Eq. 5.
* :func:`compute_balance_values` -- Eqs. 8 and 9 evaluated against the
  post-delta tree under the new master key (the two formulations agree;
  see DESIGN.md section 3, ablation 4 discussion).
* :func:`compute_insertion` -- the Section IV-E leaf split.
* :func:`verify_batch_view` / :func:`chain_values_for_view` /
  :func:`compute_deltas_multi` / :func:`compute_batch_moves` -- the
  batched-deletion pipeline over the union view ``MT(S)``: one key
  rotation and one delta set compensate every leaf outside the batch,
  and all chain evaluations ride the vectorised ``step_many`` lanes.
* :func:`derive_all_keys` -- whole-file key derivation with shared
  prefixes (Table III's computation-overhead numerator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.errors import DuplicateModulatorError, StructureError
from repro.core.modulated_chain import ChainEngine, releaf_modulator, xor_bytes
from repro.core.tree import (BalanceView, BatchView, ModulationTree, MTView,
                             PathView)
from repro.crypto.rng import RandomSource


@dataclass(frozen=True)
class DeletionCommit:
    """Client -> server payload completing a deletion."""

    cut_slots: tuple[int, ...]
    deltas: tuple[bytes, ...]
    x_s_prime: Optional[bytes]
    dest_link: Optional[bytes]
    dest_leaf: Optional[bytes]


@dataclass(frozen=True)
class BalanceMove:
    """One rebalancing move of a batched deletion (Eqs. 8-9).

    Field semantics are exactly those of
    :meth:`repro.core.tree.ModulationTree.delete_leaf`; all three fields
    are ``None`` for the degenerate one-leaf move.
    """

    x_s_prime: Optional[bytes]
    dest_link: Optional[bytes]
    dest_leaf: Optional[bytes]


@dataclass(frozen=True)
class InsertionCommit:
    """Client -> server payload completing an insertion.

    ``chain_output`` (the new item's full chain value) stays on the client;
    only the modulators travel.
    """

    t_new_link: Optional[bytes]
    t_new_leaf: Optional[bytes]
    e_link: Optional[bytes]
    e_leaf: bytes
    chain_output: bytes


def verify_distinct_modulators(modulators: Sequence[bytes]) -> None:
    """Reject any repeated modulator value (Theorem 2, case ii defence)."""
    if len(set(modulators)) != len(modulators):
        raise DuplicateModulatorError(
            "received subtree contains duplicate modulators; refusing to "
            "operate on it")


def verify_path_structure(view: PathView) -> None:
    """Check that the slots really form a root-to-leaf heap path."""
    slots = view.path_slots
    if not slots or slots[0] != 1:
        raise StructureError("path must start at the root slot")
    for parent, child in zip(slots, slots[1:]):
        if child not in (2 * parent, 2 * parent + 1):
            raise StructureError(f"slot {child} is not a child of {parent}")
    if len(view.path_links) != len(slots) - 1:
        raise StructureError("one link modulator per non-root path slot required")


def verify_mt_structure(view: MTView) -> None:
    """Check path shape and that each cut entry is the matching sibling."""
    verify_path_structure(PathView(view.path_slots, view.path_links,
                                   view.leaf_mod))
    if len(view.cut) != len(view.path_slots) - 1:
        raise StructureError("one cut node per non-root path slot required")
    for path_slot, entry in zip(view.path_slots[1:], view.cut):
        if entry.slot != (path_slot ^ 1):
            raise StructureError(
                f"cut slot {entry.slot} is not the sibling of {path_slot}")
        if entry.is_leaf and entry.leaf_mod is None:
            raise StructureError("leaf cut entries must carry a leaf modulator")


def chain_output_for_path(engine: ChainEngine, master_key: bytes,
                          view: PathView) -> bytes:
    """Evaluate ``F(K, M_k)`` for a received path."""
    return engine.evaluate(master_key, view.modulator_list())


def compute_deltas(engine: ChainEngine, old_key: bytes, new_key: bytes,
                   mt: MTView) -> tuple[tuple[int, ...], tuple[bytes, ...]]:
    """Compute ``delta(c) = F(K, M_c) xor F(K', M_c)`` for the whole cut.

    Shares one prefix sweep along ``P(k)`` for each key, so the entire cut
    costs ``O(log n)`` hashes exactly as Section IV-C argues.  The old-key
    and new-key sweeps run as two lanes through :meth:`ChainEngine.step_many`
    and all per-depth cut steps are issued as one batch, so a deep tree's
    divergence steps ride the vectorised SHA-1 lanes.
    """
    old_prefixes = [engine.pad_key(old_key)]
    new_prefixes = [engine.pad_key(new_key)]
    for link in mt.path_links:
        stepped = engine.step_many([old_prefixes[-1], new_prefixes[-1]],
                                   [link, link])
        old_prefixes.append(stepped[0])
        new_prefixes.append(stepped[1])

    # Each cut node shares the first ``depth`` path links, then diverges
    # through its own incoming link modulator: 2|cut| independent steps.
    step_values = []
    step_mods = []
    for depth, entry in enumerate(mt.cut):
        step_values.extend((old_prefixes[depth], new_prefixes[depth]))
        step_mods.extend((entry.link_mod, entry.link_mod))
    stepped = engine.step_many(step_values, step_mods)

    cut_slots = tuple(entry.slot for entry in mt.cut)
    deltas = tuple(xor_bytes(stepped[2 * i], stepped[2 * i + 1])
                   for i in range(len(mt.cut)))
    return cut_slots, deltas


def _post_delta(value: bytes, slot: int, kind: str,
                delta_by_cut_slot: dict[int, bytes]) -> bytes:
    """Value of a modulator after the server applies the deltas.

    ``delta(c)`` lands on the *child links* of an internal cut node and on
    the *leaf modulator* of a leaf cut node, so a link into ``slot`` moves
    iff ``parent(slot)`` is a cut node, and a leaf modulator at ``slot``
    moves iff ``slot`` itself is a cut node.
    """
    if kind == "link":
        delta = delta_by_cut_slot.get(slot // 2)
    else:
        delta = delta_by_cut_slot.get(slot)
    return xor_bytes(value, delta) if delta is not None else value


def compute_balance_values(
        engine: ChainEngine, new_key: bytes, mt: MTView,
        balance: Optional[BalanceView],
        cut_slots: Sequence[int], deltas: Sequence[bytes],
        rng: RandomSource,
) -> tuple[Optional[bytes], Optional[bytes], Optional[bytes]]:
    """Equations 8 and 9: leaf-modulator reassignments for rebalancing.

    Evaluated against the tree *as it will stand after the deltas are
    applied*, under the new master key alone: the client locally applies
    its own deltas to the received balance view, then uses the identity of
    :func:`repro.core.modulated_chain.releaf_modulator`.  Returns
    ``(x_s_prime, dest_link, dest_leaf)`` matching
    :meth:`repro.core.tree.ModulationTree.delete_leaf`.
    """
    if balance is None:
        return None, None, None

    slot_k = mt.path_slots[-1]
    t_slot = balance.t_path.leaf_slot
    s_slot = balance.s_slot
    delta_by_cut_slot = dict(zip(cut_slots, deltas))

    t_links = [
        _post_delta(link, slot, "link", delta_by_cut_slot)
        for slot, link in zip(balance.t_path.path_slots[1:],
                              balance.t_path.path_links)
    ]
    t_leaf = _post_delta(balance.t_path.leaf_mod, t_slot, "leaf",
                         delta_by_cut_slot)
    s_link = _post_delta(balance.s_link_mod, s_slot, "link", delta_by_cut_slot)
    s_leaf = _post_delta(balance.s_leaf_mod, s_slot, "leaf", delta_by_cut_slot)

    prefixes = engine.prefix_values(new_key, t_links)
    parent_value = prefixes[-2]  # F(K', M_p): chain value at t's parent p.

    # Eq. 8: s takes over p's slot; its prefix shortens by one link.
    old_prefix_s = engine.step(parent_value, s_link)
    x_s_prime = releaf_modulator(parent_value, old_prefix_s, s_leaf)

    if slot_k == t_slot:
        return x_s_prime, None, None

    old_prefix_t = prefixes[-1]  # F(K', M_t links): value before t's leaf mod.

    if slot_k == s_slot:
        # t takes over the collapsed parent slot, inheriting its incoming
        # link; its new prefix is the chain value at p.
        dest_leaf = releaf_modulator(parent_value, old_prefix_t, t_leaf)
        return x_s_prime, None, dest_leaf

    # Eq. 9: t lands on k's old slot under a fresh link modulator chosen by
    # the client.  P(k)'s link modulators are never delta-adjusted (the cut
    # nodes' children are all off-path), so the received values are current.
    dest_link = rng.bytes(engine.digest_size)
    parent_k_value = engine.evaluate(new_key, mt.path_links[:-1])
    new_prefix_t = engine.step(parent_k_value, dest_link)
    dest_leaf = releaf_modulator(new_prefix_t, old_prefix_t, t_leaf)
    return x_s_prime, dest_link, dest_leaf


def verify_batch_view(view: BatchView) -> None:
    """Client refusal rules for a batched deletion view (Theorem 2).

    Shape cannot be forged -- the slot lists are derived locally from
    ``(n_leaves, target_slots)`` -- so the checks are: the targets are
    distinct leaves of the claimed tree, the modulator counts match the
    derived slot lists exactly, and all modulator values are distinct.
    """
    n = view.n_leaves
    targets = view.target_slots
    if not targets:
        raise StructureError("batch view carries no targets")
    if len(set(targets)) != len(targets):
        raise StructureError("batch targets must be distinct")
    if len(targets) > n:
        raise StructureError("more targets than leaves")
    for slot in targets:
        if not n <= slot <= 2 * n - 1:
            raise StructureError(f"target slot {slot} is not a leaf of a "
                                 f"{n}-leaf tree")
    link_slots = ModulationTree.batch_link_slots(n, targets)
    if len(view.links) != len(link_slots):
        raise StructureError("one link modulator per derived link slot "
                             "required")
    leaf_slots = ModulationTree.batch_leaf_mod_slots(n, targets)
    if len(view.leaf_mods) != len(leaf_slots):
        raise StructureError("one leaf modulator per derived leaf slot "
                             "required")
    verify_distinct_modulators(view.all_modulators())


def chain_values_for_view(engine: ChainEngine, master_keys: Sequence[bytes],
                          view: BatchView) -> list[dict[int, bytes]]:
    """Chain value at every view node, per key, in one multi-lane sweep.

    Slots are visited in heap order (ascending slot number == level
    order), each level issuing a single :meth:`ChainEngine.step_many`
    call with one lane per master key, so the whole batch rides the
    numpy SHA-1 lanes.  Returns one ``slot -> F(K, M_slot)`` dict per
    key; hash count is ``len(link_slots)`` per key, identical to scalar
    evaluation.
    """
    link_slots = ModulationTree.batch_link_slots(view.n_leaves,
                                                 view.target_slots)
    link_of = dict(zip(link_slots, view.links))
    lanes: list[dict[int, bytes]] = [{1: engine.pad_key(key)}
                                     for key in master_keys]
    index = 0
    while index < len(link_slots):
        depth = link_slots[index].bit_length()
        level = []
        while (index < len(link_slots)
               and link_slots[index].bit_length() == depth):
            level.append(link_slots[index])
            index += 1
        values = []
        mods = []
        for lane in lanes:
            for slot in level:
                values.append(lane[slot // 2])
                mods.append(link_of[slot])
        stepped = engine.step_many(values, mods)
        position = 0
        for lane in lanes:
            for slot in level:
                lane[slot] = stepped[position]
                position += 1
    return lanes


def batch_chain_outputs(engine: ChainEngine, values: dict[int, bytes],
                        view: BatchView) -> list[bytes]:
    """``F(K, M_k)`` for every target, batching the leaf-modulator steps."""
    leaf_slots = ModulationTree.batch_leaf_mod_slots(view.n_leaves,
                                                     view.target_slots)
    leaf_of = dict(zip(leaf_slots, view.leaf_mods))
    return engine.step_many([values[slot] for slot in view.target_slots],
                            [leaf_of[slot] for slot in view.target_slots])


def compute_deltas_multi(view: BatchView, values_old: dict[int, bytes],
                         values_new: dict[int, bytes],
                         ) -> tuple[tuple[int, ...], tuple[bytes, ...]]:
    """Union-cut deltas (Eq. 5 over ``MT(S)``): one delta per cut node.

    ``values_old`` / ``values_new`` come from
    :func:`chain_values_for_view`; cut nodes are view nodes, so each delta
    is a plain XOR of two already-computed chain values.  Cut slots are in
    canonical (ascending) order -- the server derives the same order
    itself, so they never travel on the wire.
    """
    cut_slots = tuple(ModulationTree.union_cut_slots(view.target_slots))
    deltas = tuple(xor_bytes(values_old[slot], values_new[slot])
                   for slot in cut_slots)
    return cut_slots, deltas


def compute_batch_moves(engine: ChainEngine, view: BatchView,
                        cut_slots: Sequence[int], deltas: Sequence[bytes],
                        values_old: dict[int, bytes],
                        values_new: dict[int, bytes],
                        rng: RandomSource) -> tuple[BalanceMove, ...]:
    """Eqs. 8-9 for every rebalancing move of a batched deletion.

    The client simulates the server's ``k`` sequential
    :meth:`~repro.core.tree.ModulationTree.delete_leaf` calls (same item
    order) against the post-delta tree under the new key alone.  Two
    invariants make this cheap:

    * post-delta chain values need no recomputation per move -- a move
      only ever writes link modulators at slots that are leaves from then
      on, and leaves are never ancestors of later-queried internal nodes,
      so every needed chain value is a lookup into the one sweep already
      done (new-key values on the union path and at cut nodes, old-key
      values strictly below the cut, where the deltas preserve them);
    * modulators *are* rewritten by moves, so the band's link/leaf values
      go through a write-through mirror.
    """
    n = view.n_leaves
    targets = view.target_slots
    delta_of = dict(zip(cut_slots, deltas))
    path_set = set(ModulationTree.union_path_slots(targets))

    def star(slot: int) -> bytes:
        """Post-delta chain value under the new key at a view node."""
        if slot in path_set or slot // 2 in path_set:
            return values_new[slot]
        return values_old[slot]

    links: dict[int, bytes] = {}
    for slot, value in zip(ModulationTree.batch_link_slots(n, targets),
                           view.links):
        delta = delta_of.get(slot // 2)
        links[slot] = xor_bytes(value, delta) if delta is not None else value
    leaves: dict[int, bytes] = {}
    for slot, value in zip(ModulationTree.batch_leaf_mod_slots(n, targets),
                           view.leaf_mods):
        delta = delta_of.get(slot)
        leaves[slot] = xor_bytes(value, delta) if delta is not None else value

    owner = {slot: index for index, slot in enumerate(targets)}
    current = list(targets)
    moves: list[BalanceMove] = []
    m = n
    for index in range(len(targets)):
        slot_k = current[index]
        del owner[slot_k]
        if m == 1:
            moves.append(BalanceMove(None, None, None))
            m = 0
            continue
        t_slot, s_slot, p_slot = 2 * m - 1, 2 * m - 2, m - 1
        parent_value = star(p_slot)

        # Eq. 8: s takes over p's slot; its prefix shortens by one link.
        old_prefix_s = engine.step(parent_value, links[s_slot])
        x_s_prime = releaf_modulator(parent_value, old_prefix_s,
                                     leaves[s_slot])
        if s_slot in owner:
            moved = owner.pop(s_slot)
            owner[p_slot] = moved
            current[moved] = p_slot
        leaves[p_slot] = x_s_prime

        if slot_k == t_slot:
            moves.append(BalanceMove(x_s_prime, None, None))
        else:
            dest = p_slot if slot_k == s_slot else slot_k
            old_prefix_t = engine.step(parent_value, links[t_slot])
            if dest == p_slot:
                # t takes over the collapsed parent slot, inheriting its
                # incoming link (or landing on the root for m == 2).
                dest_link = None
                new_prefix_t = parent_value
            else:
                # Eq. 9: t lands on k's slot under a fresh client-chosen
                # link modulator.
                dest_link = rng.bytes(engine.digest_size)
                new_prefix_t = engine.step(star(dest // 2), dest_link)
                links[dest] = dest_link
            dest_leaf = releaf_modulator(new_prefix_t, old_prefix_t,
                                         leaves[t_slot])
            if t_slot in owner:
                moved = owner.pop(t_slot)
                owner[dest] = moved
                current[moved] = dest
            leaves[dest] = dest_leaf
            moves.append(BalanceMove(x_s_prime, dest_link, dest_leaf))
        m -= 1
    return tuple(moves)


def compute_insertion(engine: ChainEngine, master_key: bytes,
                      insert_path: Optional[PathView],
                      rng: RandomSource) -> InsertionCommit:
    """Section IV-E: split the shallowest leaf and key the new leaf ``e``."""
    width = engine.digest_size
    if insert_path is None:
        # Empty tree: the new leaf is the root; M_e = <x_e>.
        e_leaf = rng.bytes(width)
        chain_output = engine.evaluate(master_key, [e_leaf])
        return InsertionCommit(t_new_link=None, t_new_leaf=None, e_link=None,
                               e_leaf=e_leaf, chain_output=chain_output)

    verify_path_structure(insert_path)
    verify_distinct_modulators(insert_path.modulator_list())
    prefix_value = engine.evaluate(master_key, insert_path.path_links)

    t_new_link = rng.bytes(width)
    new_prefix_t = engine.step(prefix_value, t_new_link)
    t_new_leaf = releaf_modulator(new_prefix_t, prefix_value,
                                  insert_path.leaf_mod)

    e_link = rng.bytes(width)
    e_leaf = rng.bytes(width)
    chain_output = engine.step(engine.step(prefix_value, e_link), e_leaf)
    return InsertionCommit(t_new_link=t_new_link, t_new_leaf=t_new_leaf,
                           e_link=e_link, e_leaf=e_leaf,
                           chain_output=chain_output)


def derive_all_keys(engine: ChainEngine, master_key: bytes, n_leaves: int,
                    links: Sequence[Optional[bytes]],
                    leaves: Sequence[Optional[bytes]]) -> dict[int, bytes]:
    """Derive every leaf's chain output from a full tree snapshot.

    ``links[slot]`` / ``leaves[slot]`` are slot-indexed (entries below the
    first valid slot are ignored).  Prefix values are shared down the tree,
    so the whole file costs ``3n - 2`` hashes rather than ``n log n`` --
    this is the numerator of Table III's computation-overhead ratio.
    """
    if n_leaves == 0:
        return {}
    total = 2 * n_leaves - 1
    values: list[Optional[bytes]] = [None] * (total + 1)
    values[1] = engine.pad_key(master_key)
    outputs: dict[int, bytes] = {}

    # Level-order traversal: every slot on one level depends only on the
    # previous level, so each level is one batched step_many call -- a
    # large constant-factor win for whole-file fetches without changing
    # the 3n-2 hash count.
    level_start = 2
    while level_start <= total:
        level_end = min(2 * level_start - 1, total)
        slots = range(level_start, level_end + 1)
        level_links = []
        parent_values = []
        for slot in slots:
            link = links[slot]
            if link is None:
                raise StructureError(f"missing link modulator for slot {slot}")
            level_links.append(link)
            parent_values.append(values[slot // 2])
        for slot, value in zip(slots, engine.step_many(parent_values,
                                                       level_links)):
            values[slot] = value
        level_start = 2 * level_start

    leaf_slots = range(n_leaves, total + 1)
    leaf_mods = []
    for slot in leaf_slots:
        leaf = leaves[slot]
        if leaf is None:
            raise StructureError(f"missing leaf modulator for slot {slot}")
        leaf_mods.append(leaf)
    leaf_values = [values[slot] for slot in leaf_slots]
    for slot, output in zip(leaf_slots, engine.step_many(leaf_values,
                                                         leaf_mods)):
        outputs[slot] = output
    return outputs

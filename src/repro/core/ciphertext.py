"""The per-item ciphertext codec: ``{m || r, H(m || r)}_k`` (Section IV-B).

Each data item ``m`` is stored encrypted under its modulated data key
``k = F(K, M_k)``:

* ``r`` is a globally unique value (the client's insertion counter) that
  both makes every plaintext unique and *names* the item -- the client
  checks the recovered ``r`` against the item id it asked for, which is
  what defeats the wrong-leaf substitution attack in Theorem 2, case ii;
* ``H(m || r)`` binds the plaintext for decrypt-verification ("only if the
  decryption is successful ... the client accepts MT(k)").

Wire layout (AES-CTR keeps the ciphertext length minimal):

    nonce (8 bytes) || CTR_k( r (8 bytes, big endian) || m || H(m || r) )

A fresh random nonce is drawn for every (re-)encryption, so modification
("re-encrypts it using the same data key", Section IV-E) never reuses a
keystream.
"""

from __future__ import annotations

import struct

from repro.core.errors import IntegrityError
from repro.core.params import Params
from repro.crypto.modes import aes_ctr, aes_ctr_many

_NONCE_SIZE = 8
_COUNTER_SIZE = 8


class ItemCodec:
    """Encrypts and decrypt-verifies data items under modulated keys."""

    #: Route batch calls through the cross-item vectorised AES engine
    #: (one sweep over every item's blocks).  Output is bit-identical to
    #: the per-item path; flip off to benchmark or to force the scalar
    #: reference behaviour.
    use_bulk_aes = True

    def __init__(self, params: Params) -> None:
        self._params = params
        self._digest_size = params.chain_hash().digest_size

    @property
    def params(self) -> Params:
        return self._params

    def overhead(self) -> int:
        """Ciphertext bytes beyond the plaintext length."""
        return _NONCE_SIZE + _COUNTER_SIZE + self._digest_size

    def data_key(self, chain_output: bytes) -> bytes:
        """Extract the AES key from a chain output (paper: first 128 bits)."""
        return chain_output[:self._params.data_key_size]

    def _item_hash(self, message: bytes, r_bytes: bytes) -> bytes:
        hasher = self._params.chain_hash()
        hasher.update(message)
        hasher.update(r_bytes)
        return hasher.digest()

    def encrypt(self, chain_output: bytes, message: bytes, item_id: int,
                nonce: bytes) -> bytes:
        """Encrypt ``message`` as item ``item_id`` under a chain output."""
        if len(nonce) != _NONCE_SIZE:
            raise ValueError(f"nonce must be {_NONCE_SIZE} bytes")
        if item_id < 0:
            raise ValueError("item id must be non-negative")
        r_bytes = struct.pack(">Q", item_id)
        payload = r_bytes + message + self._item_hash(message, r_bytes)
        return nonce + aes_ctr(self.data_key(chain_output), nonce, payload)

    def encrypt_many(self, chain_outputs: list[bytes], messages: list[bytes],
                     item_ids: list[int], nonces: list[bytes]) -> list[bytes]:
        """Batch encryption: one vectorised hash pass over all item tags.

        Identical output to per-item :meth:`encrypt`; used by outsourcing
        and by the master-key baseline's O(n) re-encryption, where the
        item hashes dominate the interpreter cost.
        """
        if not (len(chain_outputs) == len(messages) == len(item_ids)
                == len(nonces)):
            raise ValueError("batch arguments must have equal lengths")
        r_bytes = [struct.pack(">Q", item_id) for item_id in item_ids]
        tags = self._hash_many([message + r
                                for message, r in zip(messages, r_bytes)])
        for nonce in nonces:
            if len(nonce) != _NONCE_SIZE:
                raise ValueError(f"nonce must be {_NONCE_SIZE} bytes")
        payloads = [r + message + tag
                    for r, message, tag in zip(r_bytes, messages, tags)]
        bodies = self._ctr_many([self.data_key(co) for co in chain_outputs],
                                list(nonces), payloads)
        return [nonce + body for nonce, body in zip(nonces, bodies)]

    def decrypt_many(self, chain_outputs: list[bytes],
                     ciphertexts: list[bytes]) -> list[tuple[bytes, int]]:
        """Batch decrypt-verify; raises IntegrityError on the first bad item."""
        if len(chain_outputs) != len(ciphertexts):
            raise ValueError("batch arguments must have equal lengths")
        minimum = _NONCE_SIZE + _COUNTER_SIZE + self._digest_size
        for ciphertext in ciphertexts:
            if len(ciphertext) < minimum:
                raise IntegrityError("ciphertext too short to be well-formed")
        payloads = self._ctr_many(
            [self.data_key(co) for co in chain_outputs],
            [ct[:_NONCE_SIZE] for ct in ciphertexts],
            [ct[_NONCE_SIZE:] for ct in ciphertexts])
        parts = [(payload[:_COUNTER_SIZE],
                  payload[_COUNTER_SIZE:-self._digest_size],
                  payload[-self._digest_size:])
                 for payload in payloads]
        expected = self._hash_many([message + r for r, message, _tag in parts])
        results = []
        for (r, message, tag), computed in zip(parts, expected):
            if computed != tag:
                raise IntegrityError("decrypt-verification failed: wrong key "
                                     "or tampered ciphertext")
            results.append((message, struct.unpack(">Q", r)[0]))
        return results

    def _ctr_many(self, keys: list[bytes], nonces: list[bytes],
                  payloads: list[bytes]) -> list[bytes]:
        """Batch CTR transform, vectorised across items when enabled."""
        if self.use_bulk_aes:
            return aes_ctr_many(keys, nonces, payloads)
        return [aes_ctr(key, nonce, payload)
                for key, nonce, payload in zip(keys, nonces, payloads)]

    def _hash_many(self, inputs: list[bytes]) -> list[bytes]:
        """Vectorised tag hashing where the chain hash supports it."""
        from repro.crypto.sha1 import Sha1
        if self._params.chain_hash is Sha1 and len(inputs) >= 16:
            from repro.crypto.bulk_hash import sha1_many
            return sha1_many(inputs)
        digests = []
        for data in inputs:
            hasher = self._params.chain_hash()
            hasher.update(data)
            digests.append(hasher.digest())
        return digests

    def decrypt(self, chain_output: bytes, ciphertext: bytes) -> tuple[bytes, int]:
        """Decrypt and verify; return ``(message, item_id)``.

        Raises :class:`IntegrityError` when the key does not match the
        ciphertext -- the client's accept/reject decision for ``MT(k)``.
        """
        minimum = _NONCE_SIZE + _COUNTER_SIZE + self._digest_size
        if len(ciphertext) < minimum:
            raise IntegrityError("ciphertext too short to be well-formed")
        nonce, body = ciphertext[:_NONCE_SIZE], ciphertext[_NONCE_SIZE:]
        payload = aes_ctr(self.data_key(chain_output), nonce, body)
        r_bytes = payload[:_COUNTER_SIZE]
        message = payload[_COUNTER_SIZE:-self._digest_size]
        tag = payload[-self._digest_size:]
        if self._item_hash(message, r_bytes) != tag:
            raise IntegrityError("decrypt-verification failed: wrong key or "
                                 "tampered ciphertext")
        return message, struct.unpack(">Q", r_bytes)[0]

"""The paper's primary contribution: key modulation.

* :mod:`repro.core.modulated_chain` -- the modulated hash chain ``F(K, M)``
  and Lemma 1's single-modulator rewrite.
* :mod:`repro.core.tree` -- the modulation tree (complete binary tree of
  link and leaf modulators) with its views and structural transactions.
* :mod:`repro.core.ops` -- the client-side computations: deletion deltas
  (Eq. 5), balancing reassignments (Eqs. 8-9), insertion splits, whole-file
  key derivation, and the client's refusal rules.
* :mod:`repro.core.ciphertext` -- the ``{m || r, H(m || r)}_k`` item codec.
* :mod:`repro.core.meta` -- the two-level meta modulation tree (Section V).
* :mod:`repro.core.scheme` -- a one-call local client/server façade.
"""

from repro.core.ciphertext import ItemCodec
from repro.core.errors import (DuplicateModulatorError, IntegrityError,
                               KeyShreddedError, ProtocolError, ReproError,
                               StaleStateError, StructureError,
                               UnknownItemError)
from repro.core.modstore import (DenseModulatorStore, LazySeededStore,
                                 ModulatorStore)
from repro.core.modulated_chain import (ChainEngine, releaf_modulator,
                                        rewrite_delta, rewrite_modulator,
                                        xor_bytes)
from repro.core.params import PAPER_PARAMS, SHA256_PARAMS, Params
from repro.core.tree import (BalanceView, CutEntry, MTView, ModulationTree,
                             PathView)


def __getattr__(name: str):
    # LocalScheme wires the client and server packages together, which both
    # import repro.core; importing it lazily keeps the package acyclic.
    if name == "LocalScheme":
        from repro.core.scheme import LocalScheme
        return LocalScheme
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BalanceView",
    "ChainEngine",
    "CutEntry",
    "DenseModulatorStore",
    "DuplicateModulatorError",
    "IntegrityError",
    "ItemCodec",
    "KeyShreddedError",
    "LazySeededStore",
    "LocalScheme",
    "MTView",
    "ModulationTree",
    "ModulatorStore",
    "PAPER_PARAMS",
    "Params",
    "PathView",
    "ProtocolError",
    "ReproError",
    "SHA256_PARAMS",
    "StaleStateError",
    "StructureError",
    "UnknownItemError",
    "releaf_modulator",
    "rewrite_delta",
    "rewrite_modulator",
    "xor_bytes",
]

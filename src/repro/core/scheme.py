"""One-call façade wiring a client to an in-process server.

:class:`LocalScheme` is the quickest way to use the library: it creates a
:class:`~repro.server.server.CloudServer`, a metering loopback channel,
and an :class:`~repro.client.client.AssuredDeletionClient`, and exposes a
single-file workflow with master keys managed in the client keystore.
Multi-file deployments with outsourced master keys use
:class:`repro.fs.filesystem.OutsourcedFileSystem` instead.
"""

from __future__ import annotations

from typing import Sequence

from repro.client.client import AssuredDeletionClient
from repro.core.params import Params
from repro.crypto.rng import RandomSource, SystemRandom
from repro.protocol.channel import LoopbackChannel
from repro.server.server import CloudServer
from repro.sim.metrics import MetricsCollector
from repro.sim.network import NetworkModel


class LocalScheme:
    """Client + in-process server pair for single-file use."""

    def __init__(self, params: Params | None = None,
                 rng: RandomSource | None = None,
                 network: NetworkModel | None = None) -> None:
        self.params = params if params is not None else Params()
        self.server = CloudServer(self.params)
        self.channel = LoopbackChannel(self.server, network=network)
        self.metrics = MetricsCollector()
        self.client = AssuredDeletionClient(
            self.channel, self.params,
            rng=rng if rng is not None else SystemRandom(),
            metrics=self.metrics)
        self._next_file_id = 1

    def new_file(self, items: Sequence[bytes]) -> tuple[int, list[int]]:
        """Outsource ``items`` as a new file; returns (file_id, item_ids)."""
        file_id = self._next_file_id
        self._next_file_id += 1
        self.client.outsource(file_id, items)
        return file_id, self.client.item_ids_of(len(items))

    def _key(self, file_id: int) -> bytes:
        return self.client.keystore.get(f"master:{file_id}")

    def access(self, file_id: int, item_id: int) -> bytes:
        return self.client.access(file_id, self._key(file_id), item_id)

    def modify(self, file_id: int, item_id: int, new_message: bytes) -> None:
        self.client.modify(file_id, self._key(file_id), item_id, new_message)

    def insert(self, file_id: int, message: bytes) -> int:
        return self.client.insert(file_id, self._key(file_id), message)

    def delete(self, file_id: int, item_id: int) -> None:
        """Assuredly delete one item (master key rotation is internal)."""
        self.client.delete(file_id, self._key(file_id), item_id)

    def delete_many(self, file_id: int, item_ids: Sequence[int]) -> None:
        """Assuredly delete a batch of items in one exchange."""
        self.client.delete_many(file_id, self._key(file_id), item_ids)

    def fetch_file(self, file_id: int) -> dict[int, bytes]:
        return self.client.fetch_file(file_id, self._key(file_id))

"""Exception hierarchy for the assured-deletion library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ProtocolError(ReproError):
    """A message was malformed or violated the protocol state machine."""


class IntegrityError(ReproError):
    """Decrypt-verification failed: ciphertext, key, or hash did not match.

    Raised by the client when a ciphertext supplied by the server does not
    decrypt to ``m || r`` with a matching ``H(m || r)`` -- the check that
    defeats the wrong-leaf attack of Theorem 2, case ii.
    """


class DuplicateModulatorError(ReproError):
    """Two modulators in a received subtree share the same value.

    The client refuses to operate on such a subtree (Theorem 2, case ii:
    the path-cloning attack of Figure 7 necessarily produces duplicate
    sibling-link modulators).  The server raises it, too, when a client
    operation would introduce a duplicate into the tree, in which case the
    client retries with fresh randomness.
    """


class StructureError(ReproError):
    """A received subtree is not shaped like a valid path/cut of the tree."""


class UnknownItemError(ReproError):
    """The requested item id (or file id) does not exist on the server."""


class KeyShreddedError(ReproError):
    """An operation needed key material that has been securely deleted."""


class StaleStateError(ReproError):
    """Client and server disagree about tree version (lost update detected)."""


class SimulatedCrash(ReproError):
    """The server process 'died' at an armed crash point (fault injection).

    Raised by :meth:`repro.server.server.CloudServer` when a test armed a
    crash point; everything the process would lose in a real ``kill -9``
    (un-checkpointed in-memory state) must be considered lost by the test
    harness, which restarts the server from its on-disk image + WAL.
    """

"""Scheme parameters shared by client and server.

The paper's concrete instantiation (Section VI-A) is SHA-1 inside the
modulated hash chain, 160-bit modulators (one digest wide), and AES with
128-bit keys taken from the key-modulation output.  All of that is captured
here so the ablation benchmarks can swap the chain hash (and with it the
modulator width) without touching any algorithm code.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.crypto.hmac import HashFactory
from repro.crypto.sha1 import Sha1
from repro.crypto.sha256 import Sha256


@dataclass(frozen=True)
class Params:
    """Cryptographic parameters of one deployment.

    Attributes:
        chain_hash: factory for the hash ``H`` used in modulated hash
            chains.  The modulator width equals this hash's digest size,
            because chain intermediates and modulators are XORed together.
        master_key_size: bytes of master key the client stores per file
            (16 in the paper; the key is zero-padded to the digest width
            before entering the chain).
        data_key_size: bytes of AES key taken from the chain output
            (16 = AES-128 in the paper).
        enforce_unique_modulators: whether the server maintains a global
            registry rejecting duplicate modulators (the paper requires
            "all modulators in the tree should have different values"; the
            lazily-seeded benchmark store may turn the registry off since a
            collision of 160-bit random values is a 2^-80 event).
    """

    chain_hash: HashFactory = Sha1
    master_key_size: int = 16
    data_key_size: int = 16
    enforce_unique_modulators: bool = True

    def __post_init__(self) -> None:
        digest_size = self.chain_hash().digest_size
        if self.master_key_size <= 0 or self.master_key_size > digest_size:
            raise ValueError(
                f"master key size must be in [1, {digest_size}] bytes")
        if self.data_key_size not in (16, 24, 32):
            raise ValueError("data key size must be a valid AES key size")
        if self.data_key_size > digest_size:
            raise ValueError("data key cannot exceed the chain digest size")

    @property
    def modulator_size(self) -> int:
        """Width of every modulator, equal to the chain digest size."""
        return self.chain_hash().digest_size


#: The paper's instantiation: SHA-1 chains, 160-bit modulators, AES-128.
PAPER_PARAMS = Params(chain_hash=Sha1)

#: Modern instantiation used by the hash-choice ablation.
SHA256_PARAMS = Params(chain_hash=Sha256)

"""Command-line interface: an assured-deletion vault backed by one server.

A small but complete front end over the library, for exploring the system
from a shell.  State is kept in two places, mirroring the two parties:

* the *server directory* (``--server-dir``) holds everything the cloud
  would hold -- ciphertexts and the modulation trees, in plaintext files;
* the *client file* (``--client-file``) holds what the client device
  would hold -- the control keys and the item counter.

Commands::

    repro-vault init
    repro-vault put  <name> < plaintext     # create/replace a file (one record per line)
    repro-vault ls
    repro-vault cat  <name>
    repro-vault get  <name> <position>
    repro-vault set  <name> <position> <value>
    repro-vault add  <name> <value>
    repro-vault rm   <name> <position> ...  # assured record deletion
                                            # (several positions = one batch)
    repro-vault drop <name>                 # assured whole-file deletion
    repro-vault serve --port 9000           # expose the vault over TCP
    repro-vault serve --port 9000 --durable # crash-safe: WAL + checkpoints
    repro-vault serve --durable --backend sqlite
                                            # out-of-core: files page in
                                            #   from a storage engine
    repro-vault compact                     # offline flush + WAL compact
    repro-vault serve --metrics-port 9100   # + /metrics /healthz /readyz
                                            #   /statusz over HTTP
    repro-vault serve --max-conns 64        # bound concurrent connections
    repro-vault serve --audit               # hash-chained deletion audit log
    repro-vault serve --shards 4            # consistent-hash sharded tier
                                            #   (one host+WAL+audit per shard)
    repro-vault serve --trace-export spans.jsonl --trace-slow-ms 50
    repro-vault audit verify                # prove the chain untampered
    repro-vault audit tail -n 20            # last audit records
    repro-vault stress --seed ci-42         # seeded concurrency stress run
    repro-vault stress --shards 4           # same run, sharded serving tier
    repro-vault probe <host> <port>         # health-check a served vault
    repro-vault metrics <host> <port>       # scrape a served vault's metrics
    repro-vault trace <name> <position>     # traced read: JSON spans on stdout
    repro-vault trace --follow              # tail the span-export file
    repro-vault stats                       # vault contents summary
    repro-vault stats <host> <port>         # live ops/s + p50/p95 dashboard

``--log-json PATH`` (any command) turns observability on and appends the
structured span/event log to PATH (``-`` streams it to stderr).

``--rpc-timeout`` / ``--rpc-attempts`` / ``--rpc-backoff`` tune the TCP
retry policy used by client-side commands (``probe``): a timed-out
request tears the connection down and retransmits with exponential
backoff, relying on the server's idempotent request-id handling.

Run it as ``python -m repro.cli ...``.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys

from repro.core.errors import ReproError
from repro.crypto.rng import SystemRandom
from repro.fs.filesystem import OutsourcedFileSystem


class Vault:
    """Durable wrapper around an :class:`OutsourcedFileSystem`.

    Durability is implemented by pickling both sides' state; a production
    deployment would persist the server state server-side, but for a CLI
    the single-process snapshot keeps the tool dependency-free while
    still exercising every protocol path on each command.
    """

    def __init__(self, server_dir: str, client_file: str) -> None:
        self.server_dir = server_dir
        self.client_file = client_file
        self._state_path = os.path.join(server_dir, "vault.state")
        self.fs: OutsourcedFileSystem | None = None

    def create(self) -> None:
        os.makedirs(self.server_dir, exist_ok=True)
        self.fs = OutsourcedFileSystem(rng=SystemRandom())
        self.save()

    def load(self) -> None:
        if not os.path.exists(self._state_path):
            raise ReproError(
                f"no vault at {self.server_dir!r}; run 'init' first")
        with open(self._state_path, "rb") as handle:
            self.fs = pickle.load(handle)

    def save(self) -> None:
        with open(self._state_path, "wb") as handle:
            pickle.dump(self.fs, handle)


def _print(value: str) -> None:
    sys.stdout.write(value + "\n")
    # Flushed per line so a parent process driving the CLI through a pipe
    # (the CI metrics smoke test) sees 'serving ...' before blocking.
    sys.stdout.flush()


def cmd_init(vault: Vault, _args) -> int:
    vault.create()
    _print(f"initialised empty vault in {vault.server_dir}")
    return 0


def cmd_put(vault: Vault, args) -> int:
    vault.load()
    records = [line.encode() for line in sys.stdin.read().splitlines()]
    if vault.fs.exists(args.name):
        vault.fs.delete_file(args.name)
    vault.fs.create_file(args.name, records)
    vault.save()
    _print(f"stored {args.name!r}: {len(records)} records")
    return 0


def cmd_ls(vault: Vault, _args) -> int:
    vault.load()
    for name in vault.fs.list_files():
        handle = vault.fs.open(name)
        _print(f"{name}\t{handle.record_count} records\t"
               f"{handle.size_bytes} bytes")
    return 0


def cmd_cat(vault: Vault, args) -> int:
    vault.load()
    for record in vault.fs.open(args.name).read_all():
        _print(record.decode(errors="replace"))
    return 0


def cmd_get(vault: Vault, args) -> int:
    vault.load()
    _print(vault.fs.open(args.name).read_record(args.position)
           .decode(errors="replace"))
    return 0


def cmd_set(vault: Vault, args) -> int:
    vault.load()
    vault.fs.open(args.name).write_record(args.position, args.value.encode())
    vault.save()
    _print(f"updated {args.name!r}[{args.position}]")
    return 0


def cmd_add(vault: Vault, args) -> int:
    vault.load()
    vault.fs.open(args.name).append_record(args.value.encode())
    vault.save()
    _print(f"appended to {args.name!r}")
    return 0


def cmd_rm(vault: Vault, args) -> int:
    vault.load()
    handle = vault.fs.open(args.name)
    if len(args.positions) == 1:
        handle.delete_record(args.positions[0])
    else:
        handle.delete_many(args.positions)
    vault.save()
    shown = ",".join(str(p) for p in args.positions)
    _print(f"assuredly deleted {args.name!r}[{shown}] "
           f"(master + control keys rotated)")
    return 0


def cmd_drop(vault: Vault, args) -> int:
    vault.load()
    vault.fs.delete_file(args.name)
    vault.save()
    _print(f"assuredly deleted file {args.name!r}")
    return 0


def cmd_stats(vault: Vault, args) -> int:
    if args.host is not None:
        # Live dashboard mode: scrape a served vault's /metrics on an
        # interval and print ops/s + delta-derived latency quantiles.
        if args.port is None:
            raise ReproError("stats <host> <port> needs both arguments")
        from repro.obs.statsview import run_stats
        return run_stats(args.host, args.port, interval=args.interval,
                         count=args.count)
    vault.load()
    fs = vault.fs
    stats = {
        "files": len(fs.list_files()),
        "records": sum(fs.open(n).record_count for n in fs.list_files()),
        "control_keys": fs.control_key_count(),
        "client_key_bytes": fs.client_key_bytes(),
    }
    _print(json.dumps(stats, indent=2))
    return 0


def _audit_log_path(vault: Vault, args) -> str:
    if args.log is not None:
        return args.log
    return os.path.join(vault.server_dir, "audit.log")


def cmd_audit(vault: Vault, args) -> int:
    """Verify or tail the tamper-evident deletion audit chain."""
    from repro.obs import audit as audit_mod

    path = _audit_log_path(vault, args)
    if args.audit_command == "verify":
        try:
            records = audit_mod.verify_log(path,
                                           require_head=not args.no_head)
        except audit_mod.AuditError as exc:
            print(f"audit verify FAILED: {exc}", file=sys.stderr)
            return 1
        deletions = sum(1 for r in records
                        if "Delete" in r.get("op", ""))
        _print(json.dumps({
            "ok": True,
            "records": len(records),
            "deletions": deletions,
            "head": records[-1]["hash"] if records else audit_mod.GENESIS,
        }, indent=2))
        return 0
    # tail
    for record in audit_mod.tail_records(path, args.n):
        _print(json.dumps(record, sort_keys=True))
    return 0


def _retry_policy(args):
    from repro.protocol.tcp import RetryPolicy
    return RetryPolicy(attempts=args.rpc_attempts, timeout=args.rpc_timeout,
                       base_delay=args.rpc_backoff)


def cmd_serve(vault: Vault, args) -> int:
    vault.load()
    if vault.fs.server is None:
        raise ReproError("this vault was created against an external server")
    if args.backend != "memory" and not args.durable:
        raise ReproError(
            f"--backend {args.backend} requires --durable (the engine "
            f"file replaces the checkpoint image)")
    if args.use_async:
        from repro.protocol.aio import AsyncTcpServerHost as host_cls
    else:
        from repro.protocol.tcp import TcpServerHost as host_cls

    from repro.obs.health import HEALTH

    metrics_server = None
    if args.metrics_port is not None:
        from repro import obs
        if not obs.is_enabled():
            obs.enable(service="repro-vault")
        metrics_server = obs.start_metrics_server(args.metrics_port)
        _print(f"metrics on http://{metrics_server.address[0]}:"
               f"{metrics_server.address[1]}/metrics")

    if args.trace_export is not None:
        # Spans only exist with observability on; exporting implies it.
        from repro import obs
        from repro.obs import spanexport
        if not obs.is_enabled():
            obs.enable(service="repro-vault")
        spanexport.configure(args.trace_export, sample=args.trace_sample,
                             slow_ms=args.trace_slow_ms)
        _print(f"exporting spans to {args.trace_export} "
               f"(sample={args.trace_sample}, slow_ms={args.trace_slow_ms})")

    if args.shards > 1:
        return _serve_sharded(vault, args, metrics_server)

    server = vault.fs.server
    if args.durable:
        # Crash-safe mode: state lives in an image + write-ahead log under
        # the server directory, not in the pickle snapshot.  First durable
        # serve bootstraps the image from the vault; later ones recover
        # from image + WAL (surviving kill -9 mid-commit).  With a
        # non-memory --backend the image is replaced by a storage-engine
        # file and files page in on demand (O(working-set) memory).
        from repro.server.persistence import save_server
        from repro.server.wal import checkpoint, recover_server
        image = os.path.join(vault.server_dir, "server.img")
        wal_path = os.path.join(vault.server_dir, "server.wal")
        if args.backend != "memory":
            from repro.server.engine import engine_path, make_engine
            engine_file = engine_path(vault.server_dir, args.backend)
            fresh = (not os.path.exists(engine_file)
                     and not os.path.exists(wal_path))
            engine = make_engine(args.backend, engine_file)
            if fresh:
                # Bootstrap: write the vault's files into the engine once
                # (no WAL attached yet, so this is a pure engine flush).
                server.attach_engine(engine)
                server.compact_storage()
            server = recover_server(None, wal_path,
                                    group_commit=args.group_commit,
                                    engine=engine,
                                    cache_nodes=args.cache_nodes)
            _print(f"durable state: {engine_file} ({args.backend} engine) "
                   f"+ {wal_path}"
                   + (" (group commit)" if args.group_commit else ""))
        else:
            if not os.path.exists(image) and not os.path.exists(wal_path):
                save_server(server, image)
            server = recover_server(image, wal_path,
                                    group_commit=args.group_commit)
            _print(f"durable state: {image} + {wal_path}"
                   + (" (group commit)" if args.group_commit else ""))
        HEALTH.register("wal", server.wal.health)
        rec = server.last_recovery
        _print(f"cold start {rec['load_seconds'] + rec['replay_seconds']:.3f}s"
               f" (state load {rec['load_seconds']:.3f}s + WAL replay of "
               f"{rec['replayed_records']} record(s) "
               f"{rec['replay_seconds']:.3f}s)")

    audit_log = None
    if args.audit:
        # Attached AFTER recovery so replayed history is not re-recorded;
        # from here on every mutating request appends one chained record.
        from repro.obs.audit import AuditLog
        audit_path = os.path.join(vault.server_dir, "audit.log")
        audit_log = AuditLog(audit_path)
        server.attach_audit(audit_log)
        _print(f"audit trail: {audit_path} "
               f"(chain at seq {audit_log.seq})")

    with host_cls(server, port=args.port,
                  max_conns=args.max_conns) as host:
        _print(f"serving vault on {host.address[0]}:{host.address[1]} "
               f"(ctrl-C to stop)")
        try:
            import threading
            threading.Event().wait()
        except KeyboardInterrupt:
            return 0
        finally:
            # Readiness flips to 503 first so a balancer drains before
            # the checkpoint starts tearing state down.
            HEALTH.set_stopping()
            if args.durable:
                checkpoint(server, image)
                HEALTH.unregister("wal")
            if audit_log is not None:
                audit_log.close()
            if metrics_server is not None:
                metrics_server.stop()
    return 0


def _serve_sharded(vault: Vault, args, metrics_server) -> int:
    """Serve the vault as N consistent-hash shards, one host per shard.

    Each shard is an isolated server with its own WAL + checkpoint image
    (``--durable``) and audit chain (``--audit``) under
    ``<server-dir>/shards/shard-<i>/``.  The vault's files are adopted
    onto their ring-assigned shards on first serve; clients connect with
    :meth:`OutsourcedFileSystem.connect_sharded` against the printed
    per-shard addresses (in shard-id order).
    """
    from repro.obs.health import HEALTH
    from repro.server.cluster import ShardCluster

    transport = "async" if args.use_async else "tcp"
    shard_dir = os.path.join(vault.server_dir, "shards")
    cluster = ShardCluster(
        args.shards, params=vault.fs.params, transport=transport,
        data_dir=shard_dir, durable=args.durable, audit=args.audit,
        group_commit=args.group_commit, max_conns=args.max_conns,
        base_port=args.port, storage_backend=args.backend,
        cache_nodes=args.cache_nodes)
    if args.durable:
        # First durable serve splits the vault's files across the ring
        # and checkpoints each shard; later serves recover every shard
        # independently from its own image + WAL.
        if not cluster.had_state:
            placed = cluster.adopt_server(vault.fs.server)
            cluster.checkpoint()
            _print(f"bootstrapped {placed} file(s) into {args.shards} "
                   f"durable shards")
        _print(f"durable shard state under {shard_dir}"
               + (" (group commit)" if args.group_commit else ""))
    else:
        cluster.adopt_server(vault.fs.server)
    if args.audit:
        _print(f"audit trails: {shard_dir}/shard-*/audit.log")
    cluster.register_health()
    try:
        cluster.start()
        for unit in cluster.units:
            host, port = unit.address
            _print(f"serving shard {unit.shard_id} on {host}:{port}")
        _print(f"serving vault across {args.shards} shards "
               f"(ctrl-C to stop)")
        try:
            import threading
            threading.Event().wait()
        except KeyboardInterrupt:
            return 0
    finally:
        # Readiness flips to 503 first so a balancer drains before the
        # per-shard checkpoints start tearing state down.
        HEALTH.set_stopping()
        if args.durable:
            cluster.checkpoint()
        cluster.unregister_health()
        cluster.stop()
        if metrics_server is not None:
            metrics_server.stop()
    return 0


def cmd_compact(vault: Vault, args) -> int:
    """Offline flush + WAL compaction for an engine-backed vault.

    Opens the storage engine and WAL under the server directory (the
    server must not be running), replays outstanding WAL records into
    the engine, flushes, truncates the WAL behind a snapshot marker,
    and asks the backend to reclaim dead space (SQLite ``VACUUM`` /
    log-file rewrite).  After this, the next ``serve --durable
    --backend ...`` cold-starts with an empty replay.
    """
    from repro.server.engine import BACKENDS, engine_path, make_engine
    from repro.server.wal import recover_server

    backend = args.backend
    if backend is None:
        # Autodetect from which engine file exists under the server dir.
        candidates = [b for b in BACKENDS if b != "memory"
                      and os.path.exists(engine_path(vault.server_dir, b))]
        if len(candidates) != 1:
            raise ReproError(
                "cannot autodetect the storage backend under "
                f"{vault.server_dir!r}; pass --backend log|sqlite")
        backend = candidates[0]
    engine_file = engine_path(vault.server_dir, backend)
    if not os.path.exists(engine_file):
        raise ReproError(
            f"no {backend} engine state at {engine_file!r}; serve with "
            f"--durable --backend {backend} first")
    wal_path = os.path.join(vault.server_dir, "server.wal")
    engine = make_engine(backend, engine_file)
    try:
        server = recover_server(None, wal_path, engine=engine)
        stats = server.compact_storage()
        engine.compact()  # reclaim dead space in the backend file itself
        server.wal.close()
    finally:
        engine.close()
    stats["backend"] = backend
    stats["replayed_records"] = server.last_recovery["replayed_records"]
    stats["seconds"] = round(stats["seconds"], 6)
    _print(json.dumps(stats, indent=2))
    return 0


def cmd_stress(_vault: Vault, args) -> int:
    """Run one seeded concurrency stress iteration and report it.

    Exits 0 when every invariant holds, 1 on a violation (the exception
    names the invariant and the offending file/item).  The run is an
    exact function of ``--seed``, so a failing CI seed replays locally.
    """
    from repro.sim.stress import StressConfig, run_stress

    config = StressConfig(seed=args.seed, workers=args.workers,
                          ops_per_worker=args.ops, readers=args.readers,
                          transport=args.transport, shards=args.shards,
                          toggle_caches=args.toggle_caches,
                          backend=args.backend)
    try:
        report = run_stress(config)
    except AssertionError as exc:
        print(f"stress run failed (seed {args.seed!r}): {exc}",
              file=sys.stderr)
        return 1
    _print(json.dumps(report.summary(), indent=2 if args.verbose else None))
    return 0


def cmd_probe(vault: Vault, args) -> int:
    """Round-trip health check against a served vault."""
    import time

    from repro.core.params import Params
    from repro.protocol import messages as msg
    from repro.protocol.tcp import TcpChannel
    from repro.protocol.wire import WireContext

    params = Params()
    ctx = WireContext(modulator_width=params.modulator_size)
    start = time.perf_counter()
    with TcpChannel((args.host, args.port), ctx,
                    retry=_retry_policy(args)) as channel:
        reply = channel.request(msg.AccessRequest(file_id=0, item_id=0))
        elapsed = time.perf_counter() - start
        # An empty vault answers E_UNKNOWN_ITEM/FILE: the server is alive
        # and speaking the protocol either way.
        alive = isinstance(reply, (msg.AccessReply, msg.ErrorReply))
        _print(json.dumps({
            "alive": alive,
            "round_trip_ms": round(elapsed * 1e3, 3),
            "retransmits": channel.counters.retransmits,
            "reply": type(reply).__name__,
        }, indent=2))
    return 0 if alive else 1


def cmd_metrics(_vault: Vault, args) -> int:
    """Scrape a served vault's Prometheus endpoint and print it."""
    import urllib.request

    url = f"http://{args.host}:{args.port}/metrics"
    with urllib.request.urlopen(url, timeout=10.0) as response:
        sys.stdout.write(response.read().decode("utf-8"))
    sys.stdout.flush()
    return 0


def cmd_trace(vault: Vault, args) -> int:
    """Read one record with tracing on; print the span log as JSON lines.

    The spans (one trace id across the whole read, including the
    two-level key fetch) go to stdout; the record's value goes to stderr
    so stdout stays machine-parseable.  ``--follow`` instead tails a
    span-export file written by ``serve --trace-export`` (new spans
    stream out as the server finishes them).
    """
    from repro import obs

    if args.follow:
        import time as _time
        path = args.file or os.path.join(vault.server_dir, "spans.jsonl")
        try:
            with open(path, encoding="utf-8") as handle:
                while True:
                    line = handle.readline()
                    if line:
                        sys.stdout.write(line)
                        sys.stdout.flush()
                    else:
                        _time.sleep(0.2)
        except (KeyboardInterrupt, BrokenPipeError):
            # ctrl-C, or the consumer hung up (`trace --follow | head`)
            return 0
        except FileNotFoundError:
            raise ReproError(
                f"no span-export file at {path!r}; start the server "
                f"with --trace-export") from None

    if args.name is None or args.position is None:
        raise ReproError("trace needs <name> <position> (or --follow)")
    vault.load()
    already_on = obs.is_enabled()
    obs.enable(log_stream=sys.stdout, service="repro-vault")
    try:
        value = vault.fs.open(args.name).read_record(args.position)
    finally:
        if not already_on:
            obs.disable()
    print(value.decode(errors="replace"), file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-vault",
        description="Assured-deletion vault (ICDCS'14 key modulation)")
    parser.add_argument("--server-dir", default=".repro-vault",
                        help="directory holding the 'cloud' state")
    parser.add_argument("--client-file", default=".repro-keys",
                        help="file holding the client's keys (unused "
                             "placeholder in the single-process CLI)")
    parser.add_argument("--rpc-timeout", type=float, default=30.0,
                        help="per-request TCP timeout in seconds")
    parser.add_argument("--rpc-attempts", type=int, default=4,
                        help="total tries per request (1 = no retry)")
    parser.add_argument("--rpc-backoff", type=float, default=0.05,
                        help="base delay of the exponential retry backoff")
    parser.add_argument("--log-json", metavar="PATH", default=None,
                        help="enable observability and append JSON span/"
                             "event logs to PATH ('-' for stderr)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("init").set_defaults(func=cmd_init)
    put = sub.add_parser("put")
    put.add_argument("name")
    put.set_defaults(func=cmd_put)
    sub.add_parser("ls").set_defaults(func=cmd_ls)
    cat = sub.add_parser("cat")
    cat.add_argument("name")
    cat.set_defaults(func=cmd_cat)
    get = sub.add_parser("get")
    get.add_argument("name")
    get.add_argument("position", type=int)
    get.set_defaults(func=cmd_get)
    set_ = sub.add_parser("set")
    set_.add_argument("name")
    set_.add_argument("position", type=int)
    set_.add_argument("value")
    set_.set_defaults(func=cmd_set)
    add = sub.add_parser("add")
    add.add_argument("name")
    add.add_argument("value")
    add.set_defaults(func=cmd_add)
    rm = sub.add_parser("rm")
    rm.add_argument("name")
    rm.add_argument("positions", type=int, nargs="+")
    rm.set_defaults(func=cmd_rm)
    drop = sub.add_parser("drop")
    drop.add_argument("name")
    drop.set_defaults(func=cmd_drop)
    stats_cmd = sub.add_parser(
        "stats", help="vault stats, or a live ops dashboard when given "
                      "a served vault's metrics host/port")
    stats_cmd.add_argument("host", nargs="?", default=None)
    stats_cmd.add_argument("port", nargs="?", type=int, default=None)
    stats_cmd.add_argument("--interval", type=float, default=2.0,
                           help="seconds between dashboard refreshes")
    stats_cmd.add_argument("--count", type=int, default=None,
                           help="stop after this many frames "
                                "(default: run until ctrl-C)")
    stats_cmd.set_defaults(func=cmd_stats)
    audit = sub.add_parser(
        "audit", help="verify or tail the tamper-evident audit chain")
    audit_sub = audit.add_subparsers(dest="audit_command", required=True)
    audit_verify = audit_sub.add_parser("verify")
    audit_verify.add_argument("--log", default=None,
                              help="audit log path (default: "
                                   "<server-dir>/audit.log)")
    audit_verify.add_argument("--no-head", action="store_true",
                              help="skip the head-anchor check (cannot "
                                   "then detect a truncated tail)")
    audit_verify.set_defaults(func=cmd_audit)
    audit_tail = audit_sub.add_parser("tail")
    audit_tail.add_argument("--log", default=None,
                            help="audit log path (default: "
                                 "<server-dir>/audit.log)")
    audit_tail.add_argument("-n", type=int, default=10,
                            help="records to show")
    audit_tail.set_defaults(func=cmd_audit)
    serve = sub.add_parser("serve")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--durable", action="store_true",
                       help="serve crash-safe state (WAL + checkpoint image "
                            "under the server directory)")
    serve.add_argument("--backend", choices=("memory", "log", "sqlite"),
                       default="memory",
                       help="storage engine for durable state: 'memory' "
                            "keeps everything resident (checkpoint image), "
                            "'log'/'sqlite' page files in from a single "
                            "engine file on demand (requires --durable)")
    serve.add_argument("--cache-nodes", type=int, default=65536,
                       help="bound on cached tree nodes for non-memory "
                            "backends (0 disables the cache)")
    serve.add_argument("--metrics-port", type=int, default=None,
                       help="also expose Prometheus metrics over HTTP on "
                            "this port (0 = ephemeral)")
    serve.add_argument("--shards", type=int, default=1,
                       help="serve N consistent-hash shards, one host per "
                            "shard on ports --port..--port+N-1 (0 = all "
                            "ephemeral); each shard owns its own WAL, "
                            "checkpoint, and audit chain")
    serve.add_argument("--max-conns", type=int, default=None,
                       help="bound concurrently served TCP connections "
                            "(excess dials queue in the listen backlog)")
    serve.add_argument("--async", dest="use_async", action="store_true",
                       help="serve over the asyncio host (pipelined tagged "
                            "frames, thread-per-connection-free)")
    serve.add_argument("--group-commit", action="store_true",
                       help="with --durable: coalesce concurrent WAL appends "
                            "into shared write+fsync batches")
    serve.add_argument("--audit", action="store_true",
                       help="append a hash-chained audit record for every "
                            "mutation to <server-dir>/audit.log")
    serve.add_argument("--trace-export", metavar="PATH", default=None,
                       help="enable observability and export finished "
                            "spans to PATH as JSON lines")
    serve.add_argument("--trace-sample", type=float, default=1.0,
                       help="fraction of traces to export (deterministic "
                            "by trace id; default 1.0)")
    serve.add_argument("--trace-slow-ms", type=float, default=None,
                       help="always export spans at least this slow, "
                            "even when sampled out")
    serve.set_defaults(func=cmd_serve)
    compact = sub.add_parser(
        "compact", help="offline flush + WAL compaction for an "
                        "engine-backed vault (server must be stopped)")
    compact.add_argument("--backend", choices=("log", "sqlite"),
                         default=None,
                         help="storage backend (default: autodetect from "
                              "the engine file under the server directory)")
    compact.set_defaults(func=cmd_compact)
    stress = sub.add_parser(
        "stress", help="run one seeded concurrency stress iteration")
    stress.add_argument("--seed", default="cli")
    stress.add_argument("--workers", type=int, default=4)
    stress.add_argument("--ops", type=int, default=16,
                        help="operations per worker thread")
    stress.add_argument("--readers", type=int, default=1,
                        help="keyless foreign-reader threads")
    stress.add_argument("--transport", choices=("loopback", "tcp", "async"),
                        default="loopback")
    stress.add_argument("--shards", type=int, default=1,
                        help="independent server shards behind the "
                             "consistent-hash router")
    stress.add_argument("--toggle-caches", action="store_true",
                        help="randomly flip the hot-path caches mid-run")
    stress.add_argument("--backend", choices=("memory", "log", "sqlite"),
                        default="memory",
                        help="storage engine behind the stressed shards "
                             "(non-memory adds mid-run WAL compaction)")
    stress.add_argument("-v", "--verbose", action="store_true",
                        help="pretty-print the report")
    stress.set_defaults(func=cmd_stress)
    probe = sub.add_parser("probe")
    probe.add_argument("host")
    probe.add_argument("port", type=int)
    probe.set_defaults(func=cmd_probe)
    metrics = sub.add_parser("metrics")
    metrics.add_argument("host")
    metrics.add_argument("port", type=int)
    metrics.set_defaults(func=cmd_metrics)
    trace = sub.add_parser("trace")
    trace.add_argument("name", nargs="?", default=None)
    trace.add_argument("position", nargs="?", type=int, default=None)
    trace.add_argument("--follow", action="store_true",
                       help="tail a span-export file instead of tracing "
                            "one read")
    trace.add_argument("--file", default=None,
                       help="span-export file to follow (default: "
                            "<server-dir>/spans.jsonl)")
    trace.set_defaults(func=cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_json is not None:
        from repro import obs
        if args.log_json == "-":
            obs.enable(log_stream=sys.stderr, service="repro-vault")
        else:
            obs.enable(log_path=args.log_json, service="repro-vault")
    vault = Vault(args.server_dir, args.client_file)
    try:
        return args.func(vault, args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except (KeyError, IndexError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())

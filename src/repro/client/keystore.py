"""Local key custody with explicit shredding.

The client's entire secret state is what lives here: master keys (one per
file, or just control keys once master keys are outsourced through the
meta modulation tree) plus the global insertion counter that generates
the unique ``r`` values.  The threat model lets an attacker seize the
device *after* deletion time ``T``; :meth:`KeyStore.seize` returns exactly
what such an attacker would learn, and the security test suite feeds it
to the recovery procedures to prove deleted data stays dead.

Keys are held in ``bytearray`` so :meth:`shred` can overwrite them in
place before dropping the reference.  (Python offers no guarantees about
copies made by the garbage collector or interned immutables -- a real
deployment would keep keys in locked, wipeable memory; the in-place
overwrite models the paper's "permanently delete" operation and makes the
seizure semantics exact for the simulator.)
"""

from __future__ import annotations

from typing import Iterator

from repro.core.errors import KeyShreddedError


class KeyStore:
    """Named key slots plus the global unique-item counter."""

    def __init__(self, first_item_id: int = 1) -> None:
        self._keys: dict[str, bytearray] = {}
        self._shredded: set[str] = set()
        self._next_item_id = first_item_id

    # ------------------------------------------------------------------
    # Key slots
    # ------------------------------------------------------------------

    def put(self, name: str, key: bytes) -> None:
        """Store (or replace) key material under ``name``."""
        existing = self._keys.get(name)
        if existing is not None:
            existing[:] = b"\x00" * len(existing)
        self._keys[name] = bytearray(key)
        self._shredded.discard(name)

    def get(self, name: str) -> bytes:
        """Return the key stored under ``name``."""
        if name in self._shredded:
            raise KeyShreddedError(f"key {name!r} has been securely deleted")
        key = self._keys.get(name)
        if key is None:
            raise KeyError(f"no key stored under {name!r}")
        return bytes(key)

    def has(self, name: str) -> bool:
        return name in self._keys

    def shred(self, name: str) -> None:
        """Overwrite and permanently delete the key under ``name``.

        Idempotent; shredding an absent key records the name as shredded
        so later :meth:`get` calls fail loudly rather than silently.
        """
        key = self._keys.pop(name, None)
        if key is not None:
            key[:] = b"\x00" * len(key)
        self._shredded.add(name)

    def names(self) -> Iterator[str]:
        return iter(self._keys)

    def key_bytes_stored(self) -> int:
        """Total bytes of key material held -- Table II's client storage."""
        return sum(len(key) for key in self._keys.values())

    # ------------------------------------------------------------------
    # Global unique counter (the ``r`` of Section IV-B)
    # ------------------------------------------------------------------

    def next_item_id(self) -> int:
        """Return a fresh globally-unique item id."""
        item_id = self._next_item_id
        self._next_item_id += 1
        return item_id

    @property
    def counter(self) -> int:
        return self._next_item_id

    # ------------------------------------------------------------------
    # Threat-model hook
    # ------------------------------------------------------------------

    def seize(self) -> dict[str, bytes]:
        """What an attacker compromising the device right now obtains."""
        return {name: bytes(key) for name, key in self._keys.items()}

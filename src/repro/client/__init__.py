"""Client side: key custody and the assured-deletion protocol driver."""

from repro.client.client import AssuredDeletionClient
from repro.client.keystore import KeyStore

__all__ = ["AssuredDeletionClient", "KeyStore"]

"""The client side of the two-party assured-deletion protocol.

:class:`AssuredDeletionClient` implements every operation of Sections
IV-C/D/E against a server reached through a metering channel:

* ``outsource`` -- build the modulation tree, encrypt every item, upload.
* ``access`` / ``modify`` -- path fetch, key derivation, decrypt-verify.
* ``insert`` -- leaf split with leaf-modulator reassignment.
* ``delete`` -- the full assured-deletion exchange: verify ``MT(k)``,
  decrypt-verify the target, pick a fresh master key, send the deltas and
  balancing modulators, and *shred the old key only after the server
  acknowledges* (time ``T`` of the threat model is the shred).
* ``fetch_file`` -- whole-file download with shared-prefix key derivation.

Master keys are passed in and returned explicitly so the two-level scheme
of Section V (master keys themselves outsourced under a control key) can
drive this client for both levels.  When ``store_keys=True`` the client
also tracks keys in its local :class:`~repro.client.keystore.KeyStore`
for standalone (one-level) use.

Every public operation appends one :class:`~repro.sim.metrics.OpRecord`
to the collector: exact protocol bytes both ways (item payload split
out), client wall time excluding server time, and chain-hash counts.
"""

from __future__ import annotations

import functools
import time
from typing import Optional, Sequence

from repro.client.keystore import KeyStore
from repro.core import ops
from repro.core.ciphertext import ItemCodec
from repro.core.errors import (DuplicateModulatorError, IntegrityError,
                               ProtocolError, ReproError, StaleStateError,
                               UnknownItemError)
from repro.core.modulated_chain import ChainEngine
from repro.core.params import Params
from repro.core.tree import ModulationTree
from repro.crypto.rng import RandomSource, SystemRandom
from repro.obs import runtime as obs
from repro.obs.trace import span
from repro.protocol import messages as msg
from repro.protocol.channel import Channel
from repro.sim.metrics import MetricsCollector, OpRecord


def _traced(op: str):
    """Wrap a client operation in a root span named ``client.<op>``.

    The span's context becomes the parent of every ``rpc.request`` span
    (and, through the wire trailer, of the server's spans), so one
    ``trace_id`` follows the whole operation.  Disabled observability
    short-circuits to the bare call.
    """
    def decorate(fn):
        name = "client." + op

        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            if not obs.enabled:
                return fn(self, *args, **kwargs)
            with span(name):
                return fn(self, *args, **kwargs)
        return wrapper
    return decorate


class _FileCache:
    """Per-file cache of verified chain outputs (client hot-path state).

    ``outputs`` maps item id -> chain output *verified by decrypt-verify*
    under ``master_key`` at tree version ``version``.  Lemma 1 is what
    makes the cache sound across mutations performed through this client:
    deletions (single and batched) rewrite the tree so that every
    *surviving* item's chain output is preserved under the new master
    key, and insertion's releaf assignment preserves the split leaf's
    output -- so entries survive a key rotation by updating
    ``master_key``/``version`` in place and dropping only the deleted
    ids.  Any version change the client did not perform itself empties
    the entry (conservative: another writer may have rotated the key).
    """

    __slots__ = ("master_key", "version", "outputs")

    def __init__(self, master_key: bytes, version: int) -> None:
        self.master_key = master_key
        self.version = version
        self.outputs: dict[int, bytes] = {}


class AssuredDeletionClient:
    """Protocol client holding (or relaying) the master keys."""

    #: How often duplicate-modulator rejections are retried before failing.
    max_retries = 8

    def __init__(self, channel: Channel, params: Params | None = None,
                 rng: RandomSource | None = None,
                 metrics: MetricsCollector | None = None,
                 keystore: KeyStore | None = None,
                 store_keys: bool = True,
                 cache: bool = False) -> None:
        self.params = params if params is not None else Params()
        self.engine = ChainEngine(self.params.chain_hash)
        self.codec = ItemCodec(self.params)
        self.channel = channel
        self.rng = rng if rng is not None else SystemRandom()
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.keystore = keystore if keystore is not None else KeyStore()
        self.store_keys = store_keys
        # In-flight deletions: commit sent (or about to be) but not yet
        # acknowledged.  Until the Ack arrives the OLD master key must not
        # be shredded (deletion time T has not happened) and the NEW key
        # must not be lost (the server may already have applied the
        # deltas).  See :meth:`resume_delete`.
        self._pending_deletes: dict[tuple[int, int], tuple[msg.DeleteCommit,
                                                           bytes]] = {}
        # Same journal for batched deletions, keyed by the item-id tuple.
        self._pending_batch_deletes: dict[
            tuple[int, tuple[int, ...]],
            tuple[msg.BatchDeleteCommit, bytes]] = {}
        # Opt-in chain cache (see _FileCache).  Off by default so metered
        # hash-call experiments keep their paper-exact counts.
        self.cache_enabled = cache
        self._caches: dict[int, _FileCache] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # Chain cache (hot-path state; see _FileCache for the invariant)
    # ------------------------------------------------------------------

    def enable_cache(self) -> None:
        """Turn the per-file chain cache on (idempotent)."""
        self.cache_enabled = True

    def disable_cache(self) -> None:
        """Turn the chain cache off and drop all cached state."""
        self.cache_enabled = False
        self._caches.clear()

    def invalidate_cache(self, file_id: int | None = None) -> None:
        """Drop cached chain state for one file (or all files)."""
        if file_id is None:
            self._caches.clear()
        else:
            self._caches.pop(file_id, None)

    def _note_cache(self, op: str, hit: bool) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        if obs.enabled:
            from repro.obs import instruments as ins
            counter = ins.CLIENT_CACHE_HITS if hit else ins.CLIENT_CACHE_MISSES
            counter.inc(op=op)

    def _cache_entry(self, file_id: int, master_key: bytes,
                     version: int) -> Optional[_FileCache]:
        """The file's cache entry iff it matches this key and version."""
        if not self.cache_enabled:
            return None
        entry = self._caches.get(file_id)
        if (entry is not None and entry.master_key == master_key
                and entry.version == version):
            return entry
        return None

    def _cache_store(self, file_id: int, master_key: bytes, version: int,
                     outputs: dict[int, bytes]) -> None:
        """Record decrypt-verified chain outputs for ``(key, version)``."""
        if not self.cache_enabled:
            return
        entry = self._caches.get(file_id)
        if (entry is None or entry.master_key != master_key
                or entry.version != version):
            entry = _FileCache(master_key, version)
            self._caches[file_id] = entry
        entry.outputs.update(outputs)

    def _cache_rotate(self, file_id: int, old_key: bytes, new_key: bytes,
                      version: int, deleted_ids: Sequence[int]) -> None:
        """Carry a cache entry across a deletion's key rotation.

        By Lemma 1 the committed deltas preserve every surviving item's
        chain output under ``new_key``, so the entry survives with its
        outputs intact minus the deleted ids.  An entry under any other
        key is stale beyond repair and is dropped.
        """
        entry = self._caches.get(file_id)
        if entry is None:
            return
        if entry.master_key != old_key:
            self._caches.pop(file_id, None)
            return
        entry.master_key = new_key
        entry.version = version
        for item_id in deleted_ids:
            entry.outputs.pop(item_id, None)

    # ------------------------------------------------------------------
    # Measurement plumbing
    # ------------------------------------------------------------------

    def _begin(self) -> tuple:
        return (self.channel.counters.snapshot(), self.engine.hash_calls,
                time.perf_counter())

    def _finish(self, op: str, begin: tuple, retries: int = 0) -> OpRecord:
        counters0, hashes0, t0 = begin
        wall = time.perf_counter() - t0
        delta = self.channel.counters.delta(counters0)
        record = OpRecord(
            op=op,
            bytes_sent=delta.bytes_sent,
            bytes_received=delta.bytes_received,
            payload_sent=delta.payload_sent,
            payload_received=delta.payload_received,
            client_seconds=max(0.0, wall - delta.server_seconds),
            hash_calls=self.engine.hash_calls - hashes0,
            round_trips=delta.round_trips,
            retries=retries,
        )
        self.metrics.add(record)
        return record

    @staticmethod
    def _expect(response: msg.Message, expected_type: type) -> msg.Message:
        if isinstance(response, msg.ErrorReply):
            if response.code == msg.E_DUPLICATE_MODULATOR:
                raise DuplicateModulatorError(response.detail)
            if response.code == msg.E_STALE_STATE:
                raise StaleStateError(response.detail)
            if response.code in (msg.E_UNKNOWN_ITEM, msg.E_UNKNOWN_FILE):
                raise UnknownItemError(response.detail)
            raise ProtocolError(f"server error {response.code}: "
                                f"{response.detail}")
        if not isinstance(response, expected_type):
            raise ProtocolError(f"expected {expected_type.__name__}, got "
                                f"{type(response).__name__}")
        return response

    def _key_name(self, file_id: int) -> str:
        return f"master:{file_id}"

    def _request_id(self) -> int:
        """Fresh non-zero idempotency id for one mutating request.

        The server answers a retransmission of the same id from its
        replay cache, so transport-level retries (and journalled resends
        after a lost Ack) are applied exactly once.
        """
        while True:
            request_id = int.from_bytes(self.rng.bytes(8), "big")
            if request_id:
                return request_id

    # ------------------------------------------------------------------
    # Outsourcing
    # ------------------------------------------------------------------

    @_traced("outsource")
    def outsource(self, file_id: int, items: Sequence[bytes]) -> bytes:
        """Encrypt and upload ``items`` as a new file; return the master key.

        Item ids are drawn from the global counter in insertion order; use
        :meth:`item_ids_of` afterwards (or track the returned ids through
        the fs layer) to address individual items.
        """
        begin = self._begin()
        retries = 0
        while True:
            master_key = self.rng.bytes(self.params.master_key_size)
            item_ids = [self.keystore.next_item_id() for _ in items]
            tree = ModulationTree.build_random(item_ids,
                                               self.params.modulator_size,
                                               self.rng)
            n = len(items)
            links, leaves = [], []
            for kind, _slot, value in tree.iter_modulators():
                (links if kind == "link" else leaves).append(value)

            outputs = self._derive_outputs(master_key, n, links, leaves)
            ciphertexts = tuple(self.codec.encrypt_many(
                [outputs[n + i] for i in range(n)], list(items),
                item_ids, [self.rng.bytes(8) for _ in items]))
            request = msg.OutsourceRequest(
                file_id=file_id, item_ids=tuple(item_ids),
                links=tuple(links), leaves=tuple(leaves),
                ciphertexts=ciphertexts, request_id=self._request_id())
            try:
                ack = self._expect(self.channel.request(request), msg.Ack)
            except DuplicateModulatorError:
                retries += 1
                if retries > self.max_retries:
                    raise
                continue
            break

        self._last_item_ids = list(item_ids)
        if self.cache_enabled:
            # Seed the chain cache: every output was just derived anyway.
            self._caches.pop(file_id, None)
            self._cache_store(file_id, master_key, ack.tree_version,
                              {item_id: outputs[n + i]
                               for i, item_id in enumerate(item_ids)})
        if self.store_keys:
            self.keystore.put(self._key_name(file_id), master_key)
        self._finish("outsource", begin, retries)
        return master_key

    def item_ids_of(self, items_count: int) -> list[int]:
        """Item ids assigned by the most recent :meth:`outsource` call."""
        ids = getattr(self, "_last_item_ids", None)
        if ids is None or len(ids) != items_count:
            raise ReproError("no matching outsource call recorded")
        return list(ids)

    def _derive_outputs(self, master_key: bytes, n: int,
                        links: Sequence[bytes],
                        leaves: Sequence[bytes]) -> dict[int, bytes]:
        """Slot-indexed chain outputs for a whole slot-ordered tree dump."""
        total = 2 * n - 1 if n else 0
        link_by_slot: list[Optional[bytes]] = [None] * (total + 1)
        leaf_by_slot: list[Optional[bytes]] = [None] * (total + 1)
        for i, value in enumerate(links):
            link_by_slot[2 + i] = value
        for i, value in enumerate(leaves):
            leaf_by_slot[n + i] = value
        return ops.derive_all_keys(self.engine, master_key, n,
                                   link_by_slot, leaf_by_slot)

    # ------------------------------------------------------------------
    # Access and modification
    # ------------------------------------------------------------------

    def _fetch_verified(self, file_id: int, master_key: bytes,
                        item_id: int, *,
                        op: str = "access") -> tuple[bytes, bytes, int]:
        """Shared access path: returns (message, chain_output, version).

        A warm chain-cache hit skips the structural checks and the
        ``O(log n)`` chain evaluation; decrypt-verify (tag plus recovered
        item id) still runs on every call, so a wrong cached output can
        only fail closed, never yield a wrong plaintext.
        """
        reply = self._expect(
            self.channel.request(msg.AccessRequest(file_id=file_id,
                                                   item_id=item_id)),
            msg.AccessReply)
        cached = None
        if self.cache_enabled:
            entry = self._cache_entry(file_id, master_key, reply.tree_version)
            if entry is not None:
                cached = entry.outputs.get(item_id)
            self._note_cache(op, cached is not None)
        if cached is not None:
            chain_output = cached
        else:
            ops.verify_path_structure(reply.path)
            ops.verify_distinct_modulators(reply.path.modulator_list())
            chain_output = ops.chain_output_for_path(self.engine, master_key,
                                                     reply.path)
        message, recovered_id = self.codec.decrypt(chain_output,
                                                   reply.ciphertext)
        if recovered_id != item_id:
            raise IntegrityError(
                f"server returned item {recovered_id} instead of {item_id}")
        if cached is None:
            self._cache_store(file_id, master_key, reply.tree_version,
                              {item_id: chain_output})
        return message, chain_output, reply.tree_version

    @_traced("access")
    def access(self, file_id: int, master_key: bytes, item_id: int) -> bytes:
        """Fetch, decrypt, and verify one item."""
        begin = self._begin()
        message, _output, _version = self._fetch_verified(file_id, master_key,
                                                          item_id)
        self._finish("access", begin)
        return message

    @_traced("modify")
    def modify(self, file_id: int, master_key: bytes, item_id: int,
               new_message: bytes) -> None:
        """Replace one item's plaintext, re-encrypting under the same key."""
        begin = self._begin()
        retries = 0
        while True:
            _old, chain_output, version = self._fetch_verified(
                file_id, master_key, item_id, op="modify")
            ciphertext = self.codec.encrypt(chain_output, new_message,
                                            item_id, self.rng.bytes(8))
            try:
                self._expect(
                    self.channel.request(msg.ModifyCommit(
                        file_id=file_id, item_id=item_id,
                        ciphertext=ciphertext, tree_version=version,
                        request_id=self._request_id())),
                    msg.Ack)
            except StaleStateError:
                retries += 1
                if retries > self.max_retries:
                    raise
                continue
            break
        self._finish("modify", begin, retries)

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    @_traced("insert")
    def insert(self, file_id: int, master_key: bytes, message: bytes) -> int:
        """Insert a new item; returns its id."""
        begin = self._begin()
        retries = 0
        while True:
            challenge = self._expect(
                self.channel.request(msg.InsertRequest(file_id=file_id)),
                msg.InsertChallenge)
            commit = ops.compute_insertion(self.engine, master_key,
                                           challenge.path, self.rng)
            item_id = self.keystore.next_item_id()
            ciphertext = self.codec.encrypt(commit.chain_output, message,
                                            item_id, self.rng.bytes(8))
            try:
                ack = self._expect(
                    self.channel.request(msg.InsertCommit(
                        file_id=file_id, item_id=item_id,
                        t_new_link=commit.t_new_link,
                        t_new_leaf=commit.t_new_leaf,
                        e_link=commit.e_link, e_leaf=commit.e_leaf,
                        ciphertext=ciphertext,
                        tree_version=challenge.tree_version,
                        request_id=self._request_id())),
                    msg.Ack)
            except (DuplicateModulatorError, StaleStateError):
                retries += 1
                if retries > self.max_retries:
                    raise
                continue
            break
        if self.cache_enabled:
            # The split leaf's releaf assignment preserves the existing
            # item's chain output, so surviving entries carry over.
            entry = self._caches.get(file_id)
            if entry is not None:
                if (entry.master_key == master_key
                        and entry.version == challenge.tree_version):
                    entry.version = ack.tree_version
                    entry.outputs[item_id] = commit.chain_output
                else:
                    self._caches.pop(file_id, None)
        self._finish("insert", begin, retries)
        return item_id

    # ------------------------------------------------------------------
    # Deletion (the paper's core operation)
    # ------------------------------------------------------------------

    @_traced("delete")
    def delete(self, file_id: int, master_key: bytes, item_id: int) -> bytes:
        """Assuredly delete one item; returns the *new* master key.

        The old master key is shredded from the keystore only after the
        server acknowledges -- that shred is the deletion time ``T`` after
        which the threat model allows the device to be seized.
        """
        begin = self._begin()
        challenge = self._expect(
            self.channel.request(msg.DeleteRequest(file_id=file_id,
                                                   item_id=item_id)),
            msg.DeleteChallenge)
        mt = challenge.mt

        # Client refusal rules (Theorem 2, case ii).  The MT view and the
        # balancing view may legitimately reference the same physical
        # modulator (t or s can sit on the cut of MT(k)), so distinctness
        # is checked over *locations*: the same (kind, slot) must carry one
        # consistent value, and all distinct locations must carry distinct
        # values.
        ops.verify_mt_structure(mt)
        locations: dict[tuple[str, int], bytes] = {}

        def _note(kind: str, slot: int, value: bytes) -> None:
            previous = locations.setdefault((kind, slot), value)
            if previous != value:
                raise IntegrityError(
                    f"server sent conflicting values for the {kind} "
                    f"modulator of slot {slot}")

        for slot, link in zip(mt.path_slots[1:], mt.path_links):
            _note("link", slot, link)
        _note("leaf", mt.path_slots[-1], mt.leaf_mod)
        for entry in mt.cut:
            _note("link", entry.slot, entry.link_mod)
            if entry.leaf_mod is not None:
                _note("leaf", entry.slot, entry.leaf_mod)
        if challenge.balance is not None:
            balance = challenge.balance
            ops.verify_path_structure(balance.t_path)
            if balance.s_slot != (balance.t_path.leaf_slot ^ 1):
                raise ops.StructureError("balance sibling slot mismatch")
            for slot, link in zip(balance.t_path.path_slots[1:],
                                  balance.t_path.path_links):
                _note("link", slot, link)
            _note("leaf", balance.t_path.leaf_slot, balance.t_path.leaf_mod)
            _note("link", balance.s_slot, balance.s_link_mod)
            _note("leaf", balance.s_slot, balance.s_leaf_mod)
        elif len(mt.path_slots) > 1:
            raise ProtocolError("server omitted the balancing view for a "
                                "multi-leaf tree")
        ops.verify_distinct_modulators(list(locations.values()))

        path_view = ops.PathView(mt.path_slots, mt.path_links, mt.leaf_mod)
        old_output = ops.chain_output_for_path(self.engine, master_key,
                                               path_view)
        _message, recovered_id = self.codec.decrypt(old_output,
                                                    challenge.ciphertext)
        if recovered_id != item_id:
            raise IntegrityError(
                f"server offered item {recovered_id} for deletion of "
                f"{item_id}; rejecting MT(k)")

        retries = 0
        while True:
            new_key = self.rng.bytes(self.params.master_key_size)
            # Re-pick if the deleted key would survive the key change
            # (Theorem 2's "the client can simply pick a different K'").
            new_output = self.engine.evaluate(new_key,
                                              path_view.modulator_list())
            if new_output == old_output:
                retries += 1
                continue
            cut_slots, deltas = ops.compute_deltas(self.engine, master_key,
                                                   new_key, mt)
            x_s_prime, dest_link, dest_leaf = ops.compute_balance_values(
                self.engine, new_key, mt, challenge.balance, cut_slots,
                deltas, self.rng)
            commit = msg.DeleteCommit(
                file_id=file_id, item_id=item_id,
                cut_slots=cut_slots, deltas=deltas,
                x_s_prime=x_s_prime, dest_link=dest_link,
                dest_leaf=dest_leaf,
                tree_version=challenge.tree_version,
                request_id=self._request_id())
            # Journal before sending: if the Ack is lost, the server may
            # already hold the delta-adjusted tree under new_key.
            self._pending_deletes[(file_id, item_id)] = (commit, new_key)
            try:
                ack = self._expect(self.channel.request(commit), msg.Ack)
            except DuplicateModulatorError:
                self._pending_deletes.pop((file_id, item_id), None)
                retries += 1
                if retries > self.max_retries:
                    raise
                continue
            break

        self._pending_deletes.pop((file_id, item_id), None)
        if self.cache_enabled:
            self._cache_rotate(file_id, master_key, new_key,
                               ack.tree_version, (item_id,))
        if self.store_keys:
            self.keystore.shred(self._key_name(file_id))
            self.keystore.put(self._key_name(file_id), new_key)
        self._finish("delete", begin, retries)
        return new_key

    def pending_deletes(self) -> list[tuple[int, int]]:
        """(file_id, item_id) pairs whose deletion commit is unconfirmed."""
        return sorted(self._pending_deletes)

    @_traced("resume_delete")
    def resume_delete(self, file_id: int, item_id: int) -> bytes:
        """Finalise a deletion whose Ack was lost in transit.

        Resends the journalled commit byte-for-byte: the server's replay
        cache answers with the original Ack if the commit had been
        applied, or applies it now if it never arrived -- exactly-once
        either way.  On success the old master key is shredded (this is
        deletion time ``T``) and the new key returned.
        """
        entry = self._pending_deletes.get((file_id, item_id))
        if entry is None:
            raise UnknownItemError(
                f"no pending deletion for file {file_id} item {item_id}")
        commit, new_key = entry
        begin = self._begin()
        self._expect(self.channel.request(commit), msg.Ack)
        self._pending_deletes.pop((file_id, item_id), None)
        self._caches.pop(file_id, None)
        if self.store_keys:
            self.keystore.shred(self._key_name(file_id))
            self.keystore.put(self._key_name(file_id), new_key)
        self._finish("resume_delete", begin)
        return new_key

    # ------------------------------------------------------------------
    # Batched deletion
    # ------------------------------------------------------------------

    @_traced("delete_many")
    def delete_many(self, file_id: int, master_key: bytes,
                    item_ids: Sequence[int]) -> bytes:
        """Assuredly delete a *set* of items in one exchange.

        One key rotation and one round-trip pair replace ``k`` sequential
        deletions: the union cut of all target paths is compensated by a
        single fresh master key, all chain evaluations ride the vectorised
        ``step_many`` lanes, and the ``k`` rebalancing moves are simulated
        locally from the balance band in the view.  Semantics are
        identical to deleting the items one by one (in the given order);
        returns the new master key.
        """
        item_ids = tuple(item_ids)
        if not item_ids:
            return master_key
        if len(set(item_ids)) != len(item_ids):
            raise ReproError("batch item ids must be distinct")
        begin = self._begin()
        reply = self._expect(
            self.channel.request(msg.BatchDeleteRequest(file_id=file_id,
                                                        item_ids=item_ids)),
            msg.BatchDeleteReply)
        view = ops.BatchView(n_leaves=reply.n_leaves,
                             target_slots=reply.target_slots,
                             links=reply.links, leaf_mods=reply.leaf_mods)
        # Client refusal rules (Theorem 2): the derived slot lists pin the
        # view's shape, so only value-level checks remain.
        ops.verify_batch_view(view)
        if len(view.target_slots) != len(item_ids):
            raise ProtocolError("one target slot per item required")
        if len(reply.ciphertexts) != len(item_ids):
            raise ProtocolError("one ciphertext per item required")

        new_key = self.rng.bytes(self.params.master_key_size)
        values_old, values_new = ops.chain_values_for_view(
            self.engine, [master_key, new_key], view)
        old_outputs = ops.batch_chain_outputs(self.engine, values_old, view)
        decrypted = self.codec.decrypt_many(old_outputs,
                                            list(reply.ciphertexts))
        for item_id, (_message, recovered_id) in zip(item_ids, decrypted):
            if recovered_id != item_id:
                raise IntegrityError(
                    f"server offered item {recovered_id} for deletion of "
                    f"{item_id}; rejecting MT(S)")

        retries = 0
        while True:
            # Re-pick if any deleted key would survive the key change
            # (Theorem 2's "the client can simply pick a different K'").
            new_outputs = ops.batch_chain_outputs(self.engine, values_new,
                                                  view)
            if any(new == old for new, old in zip(new_outputs, old_outputs)):
                retries += 1
                if retries > self.max_retries:
                    raise ReproError("could not find a collision-free key")
                new_key = self.rng.bytes(self.params.master_key_size)
                values_new = ops.chain_values_for_view(self.engine,
                                                       [new_key], view)[0]
                continue
            cut_slots, deltas = ops.compute_deltas_multi(view, values_old,
                                                         values_new)
            moves = ops.compute_batch_moves(self.engine, view, cut_slots,
                                            deltas, values_old, values_new,
                                            self.rng)
            commit = msg.BatchDeleteCommit(
                file_id=file_id, item_ids=item_ids, deltas=deltas,
                moves=moves, tree_version=reply.tree_version,
                request_id=self._request_id())
            # Journal before sending: if the Ack is lost, the server may
            # already hold the delta-adjusted tree under new_key.
            self._pending_batch_deletes[(file_id, item_ids)] = (commit,
                                                                new_key)
            try:
                ack = self._expect(self.channel.request(commit), msg.Ack)
            except DuplicateModulatorError:
                self._pending_batch_deletes.pop((file_id, item_ids), None)
                retries += 1
                if retries > self.max_retries:
                    raise
                new_key = self.rng.bytes(self.params.master_key_size)
                values_new = ops.chain_values_for_view(self.engine,
                                                       [new_key], view)[0]
                continue
            break

        self._pending_batch_deletes.pop((file_id, item_ids), None)
        if self.cache_enabled:
            self._cache_rotate(file_id, master_key, new_key,
                               ack.tree_version, item_ids)
        if self.store_keys:
            self.keystore.shred(self._key_name(file_id))
            self.keystore.put(self._key_name(file_id), new_key)
        self._finish("delete_many", begin, retries)
        return new_key

    def pending_batch_deletes(self) -> list[tuple[int, tuple[int, ...]]]:
        """(file_id, item_ids) pairs whose batch commit is unconfirmed."""
        return sorted(self._pending_batch_deletes)

    @_traced("resume_delete_many")
    def resume_delete_many(self, file_id: int,
                           item_ids: Sequence[int]) -> bytes:
        """Finalise a batched deletion whose Ack was lost in transit.

        Same exactly-once resolution as :meth:`resume_delete`: the
        journalled commit is resent byte-for-byte and the server's replay
        cache answers retransmissions with the original Ack.
        """
        key = (file_id, tuple(item_ids))
        entry = self._pending_batch_deletes.get(key)
        if entry is None:
            raise UnknownItemError(
                f"no pending batch deletion for file {file_id} items "
                f"{list(item_ids)}")
        commit, new_key = entry
        begin = self._begin()
        self._expect(self.channel.request(commit), msg.Ack)
        self._pending_batch_deletes.pop(key, None)
        self._caches.pop(file_id, None)
        if self.store_keys:
            self.keystore.shred(self._key_name(file_id))
            self.keystore.put(self._key_name(file_id), new_key)
        self._finish("resume_delete_many", begin)
        return new_key

    # ------------------------------------------------------------------
    # Whole-file operations
    # ------------------------------------------------------------------

    @_traced("fetch_file")
    def fetch_file(self, file_id: int, master_key: bytes) -> dict[int, bytes]:
        """Download and decrypt the whole file; item id -> plaintext."""
        begin = self._begin()
        reply = self._expect(
            self.channel.request(msg.FetchFileRequest(file_id=file_id)),
            msg.FetchFileReply)
        n = reply.n_leaves
        if len(reply.item_ids) != n or len(reply.ciphertexts) != n:
            raise ProtocolError("whole-file reply is inconsistent")
        leaf_outputs: Optional[list[bytes]] = None
        if self.cache_enabled:
            entry = self._cache_entry(file_id, master_key, reply.tree_version)
            if entry is not None and all(item_id in entry.outputs
                                         for item_id in reply.item_ids):
                leaf_outputs = [entry.outputs[item_id]
                                for item_id in reply.item_ids]
            self._note_cache("fetch_file", leaf_outputs is not None)
        warm = leaf_outputs is not None
        if leaf_outputs is None:
            outputs = self._derive_outputs(master_key, n, reply.links,
                                           reply.leaves)
            leaf_outputs = [outputs[n + i] for i in range(n)]
        decrypted = self.codec.decrypt_many(leaf_outputs,
                                            list(reply.ciphertexts))
        result: dict[int, bytes] = {}
        for item_id, (message, recovered_id) in zip(reply.item_ids,
                                                    decrypted):
            if recovered_id != item_id:
                raise IntegrityError(
                    f"item id mismatch in whole-file fetch: "
                    f"{recovered_id} != {item_id}")
            result[item_id] = message
        if not warm:
            self._cache_store(file_id, master_key, reply.tree_version,
                              dict(zip(reply.item_ids, leaf_outputs)))
        self._finish("fetch_file", begin)
        return result

    @_traced("delete_file_state")
    def delete_file_state(self, file_id: int) -> None:
        """Ask the server to drop a file's state (space reclamation only)."""
        begin = self._begin()
        self._expect(
            self.channel.request(msg.DeleteFileRequest(
                file_id=file_id, request_id=self._request_id())),
            msg.Ack)
        self._caches.pop(file_id, None)
        self._finish("delete_file_state", begin)

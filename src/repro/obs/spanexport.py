"""JSON-lines span export: traces that survive the process.

The in-memory span log (:mod:`repro.obs.logs`) is great interactively
but dies with the process; operators diagnosing yesterday's slow delete
need the ``fs.*`` -> ``rpc.request`` -> ``server.handle`` trees on disk.
This module attaches a process-wide exporter that appends every
*selected* finished span to a JSON-lines file:

* **Head-based sampling**: the decision is a deterministic function of
  the trace id (first 8 bytes as a u64, compared against the sample
  rate), so a whole trace tree is exported or skipped together even
  though its spans finish independently on both sides of the wire.
* **Slow-span override**: spans at or above ``slow_ms`` are always
  exported (reason ``slow``) regardless of sampling -- the tail is the
  part worth keeping.

Each line is the same record a span emits to the log sink (name, trace
and span ids, parent, duration, status, attributes) plus an ``export``
field naming why it was kept.  Writes are line-buffered and append-only
so ``repro-vault trace --follow`` can tail the file live.

Exporting is configured explicitly (``serve --trace-export PATH``) and
torn down by :func:`repro.obs.runtime.disable`; with no exporter
attached the per-span cost is one module attribute load.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Optional

#: The attached exporter, or None.  Read via :func:`active` on the span
#: hot path; rebind only through :func:`configure` / :func:`detach`.
_exporter: Optional["SpanExporter"] = None

#: Denominator of the sampling hash: first 8 trace-id bytes as a u64.
_SAMPLE_SPACE = float(2 ** 64)


class SpanExporter:
    """Appends sampled/slow span records to a JSON-lines file."""

    def __init__(self, path: Optional[str] = None, *,
                 stream: Optional[IO[str]] = None,
                 sample: float = 1.0,
                 slow_ms: Optional[float] = None) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError("sample rate must be within [0, 1]")
        if path is None and stream is None:
            raise ValueError("span exporter needs a path or a stream")
        self.path = path
        self.sample = sample
        self.slow_ms = slow_ms
        self._lock = threading.Lock()
        self._owns_handle = stream is None
        self._handle: IO[str] = (open(path, "a", encoding="utf-8")
                                 if stream is None else stream)

    # -- selection -------------------------------------------------------

    def sampled(self, trace_id_hex: str) -> bool:
        """Deterministic head-based decision shared by a whole trace."""
        if self.sample >= 1.0:
            return True
        if self.sample <= 0.0:
            return False
        try:
            head = int(trace_id_hex[:16], 16)
        except ValueError:
            return False
        return head / _SAMPLE_SPACE < self.sample

    def reason_for(self, record: dict) -> Optional[str]:
        """Why this record should be exported, or None to drop it."""
        if self.slow_ms is not None and \
                record.get("duration_ms", 0.0) >= self.slow_ms:
            return "slow"
        if self.sampled(record.get("trace_id", "")):
            return "sampled"
        return None

    # -- writing ---------------------------------------------------------

    def export(self, record: dict) -> None:
        """Apply the selection policy and append the record if it wins."""
        from repro.obs import instruments as ins
        reason = self.reason_for(record)
        if reason is None:
            ins.SPANS_DROPPED.inc(reason="unsampled")
            return
        entry = dict(record)
        entry["export"] = reason
        line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
        try:
            with self._lock:
                self._handle.write(line + "\n")
                self._handle.flush()
        except (OSError, ValueError):
            # A full disk or closed handle must never take the traced
            # operation down with it; spans are telemetry, not state.
            ins.SPANS_DROPPED.inc(reason="error")
            return
        ins.SPANS_EXPORTED.inc(reason=reason)

    def close(self) -> None:
        if self._owns_handle:
            try:
                self._handle.close()
            except OSError:
                pass


def active() -> Optional[SpanExporter]:
    """The attached exporter (span hot path; one attribute load)."""
    return _exporter


def configure(path: Optional[str] = None, *,
              stream: Optional[IO[str]] = None,
              sample: float = 1.0,
              slow_ms: Optional[float] = None) -> SpanExporter:
    """Attach a process-wide exporter, replacing any previous one."""
    global _exporter
    exporter = SpanExporter(path, stream=stream, sample=sample,
                            slow_ms=slow_ms)
    previous, _exporter = _exporter, exporter
    if previous is not None:
        previous.close()
    return exporter


def detach() -> None:
    """Detach and close the exporter (no-op when none is attached)."""
    global _exporter
    previous, _exporter = _exporter, None
    if previous is not None:
        previous.close()

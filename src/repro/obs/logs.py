"""Structured JSON logging: one JSON object per line.

This is deliberately not the stdlib ``logging`` module: the records are
machine-first (the CI smoke test and the tracing tests parse them back),
every record carries the active trace ids, and there is exactly one
process-wide sink so client and server halves of a loopback deployment
interleave into a single auditable stream.

Record schema (fields beyond these are span/event attributes)::

    ts        float   seconds since the epoch
    service   str     configured service name
    event     str     "span" for span records, else the event name
    name      str     span name (span records only)
    trace_id  str     32 hex chars, absent outside a trace
    span_id   str     16 hex chars
    parent_span_id    str | absent (root spans)
    duration_ms       float (span records only)
    status    str     "ok" | "error" (span records only)
"""

from __future__ import annotations

import json
import threading
import time
from typing import IO, Optional

_lock = threading.Lock()
_stream: Optional[IO[str]] = None
_owns_stream = False
_service = "repro"


def configure(path: Optional[str] = None,
              stream: Optional[IO[str]] = None,
              service: str = "repro") -> None:
    """Point the process-wide sink at a file path or an open stream.

    Passing neither detaches the sink (records are dropped).  A path is
    opened in append mode and closed on the next ``configure``.
    """
    global _stream, _owns_stream, _service
    if path is not None and stream is not None:
        raise ValueError("pass a path or a stream, not both")
    with _lock:
        if _owns_stream and _stream is not None:
            try:
                _stream.close()
            except OSError:
                pass
        if path is not None:
            _stream = open(path, "a", encoding="utf-8")
            _owns_stream = True
        else:
            _stream = stream
            _owns_stream = False
        _service = service


def sink_configured() -> bool:
    return _stream is not None


def emit(record: dict) -> None:
    """Serialise one record to the sink (no-op when detached)."""
    stream = _stream
    if stream is None:
        return
    record.setdefault("ts", time.time())
    record.setdefault("service", _service)
    line = json.dumps(record, separators=(",", ":"), default=repr)
    with _lock:
        if _stream is None:  # detached while we serialised
            return
        _stream.write(line + "\n")
        _stream.flush()

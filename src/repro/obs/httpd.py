"""Prometheus text exposition and health surface over HTTP.

A threaded stdlib HTTP server exposing, for ``repro-vault serve
--metrics-port`` and anything else that wants to scrape the process:

* ``/metrics``  -- Prometheus text exposition (0.0.4);
* ``/healthz``  -- liveness: ``200 ok`` while the process serves, ``503``
  once shutdown has begun (the flag flips before the listener closes, so
  a load balancer sees the drain);
* ``/readyz``   -- readiness: runs every probe registered in
  :data:`repro.obs.health.HEALTH` (WAL writable, committer thread alive,
  event loop responsive, ...) and answers ``200``/``503`` with a JSON
  body naming each check's verdict;
* ``/statusz``  -- one JSON snapshot of the health checks plus every
  counter and gauge (and histogram count/sum), for humans and scripts
  that want state without a Prometheus parser.

Deliberately minimal: GET only, no TLS, bind it to loopback or a private
interface.  A scraper that disconnects mid-response (curl timeout,
Prometheus reload) is swallowed silently -- half-written sockets are the
scraper's business, not traceback spam on the server's stderr.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.health import HEALTH
from repro.obs.metrics import REGISTRY, Counter, Gauge, Histogram, \
    MetricsRegistry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Scraper hung up mid-response; never worth a traceback.
_DISCONNECTS = (BrokenPipeError, ConnectionResetError)


def status_snapshot(registry: MetricsRegistry) -> dict:
    """The ``/statusz`` body: health verdicts + flattened metric values."""
    snapshot = HEALTH.run_checks()
    metrics: dict[str, object] = {}
    for metric in registry.metrics():
        if isinstance(metric, (Counter, Gauge)):
            with metric._lock:
                values = dict(metric._values)
            if not metric.labelnames:
                metrics[metric.name] = values.get((), 0.0)
            else:
                metrics[metric.name] = {
                    ",".join(f"{n}={v}" for n, v
                             in zip(metric.labelnames, key)): value
                    for key, value in sorted(values.items())}
        elif isinstance(metric, Histogram):
            with metric._lock:
                count = sum(s[2] for s in metric._series.values())
                total = sum(s[1] for s in metric._series.values())
            metrics[metric.name] = {"count": count, "sum": total}
    snapshot["metrics"] = metrics
    return snapshot


def _make_handler(registry: MetricsRegistry, owner: "MetricsServer"):
    class Handler(BaseHTTPRequestHandler):
        def _send(self, status: int, body: bytes,
                  content_type: str = "text/plain") -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
            try:
                self._route(self.path.split("?", 1)[0])
            except _DISCONNECTS:
                self.close_connection = True

        def _route(self, path: str) -> None:
            if path == "/metrics":
                self._send(200, registry.render().encode("utf-8"),
                           CONTENT_TYPE)
            elif path == "/healthz":
                if owner.stopping or HEALTH.stopping:
                    self._send(503, b"stopping\n")
                else:
                    self._send(200, b"ok\n")
            elif path == "/readyz":
                report = HEALTH.run_checks()
                ready = report["ready"] and not owner.stopping
                body = json.dumps(report, indent=2).encode("utf-8")
                self._send(200 if ready else 503, body,
                           "application/json")
            elif path == "/statusz":
                body = json.dumps(status_snapshot(registry),
                                  indent=2).encode("utf-8")
                self._send(200, body, "application/json")
            else:
                self.send_error(404, "try /metrics")

        def finish(self):
            try:
                super().finish()
            except _DISCONNECTS:
                pass  # flush of a dead socket on teardown

        def log_message(self, format, *args):  # noqa: A002 - stdlib API
            pass  # scrapes must not spam the server's stdout

    return Handler


class MetricsServer:
    """Serves a registry on ``host:port`` from a daemon thread."""

    def __init__(self, registry: MetricsRegistry | None = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.registry = registry if registry is not None else REGISTRY
        self.stopping = False
        self._httpd = ThreadingHTTPServer(
            (host, port), _make_handler(self.registry, self))
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address  # type: ignore[return-value]

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self.stopping = False
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-metrics-http", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            # Flip liveness to 503 before the listener dies so an
            # in-flight health probe observes the drain.
            self.stopping = True
            self._httpd.shutdown()
            self._httpd.server_close()
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

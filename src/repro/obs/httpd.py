"""Prometheus text exposition over HTTP.

A threaded stdlib HTTP server exposing ``/metrics`` (and a trivial
``/healthz``) for ``repro-vault serve --metrics-port`` and anything else
that wants to scrape the process.  Deliberately minimal: GET only, no
TLS, bind it to loopback or a private interface.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.metrics import REGISTRY, MetricsRegistry

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _make_handler(registry: MetricsRegistry):
    class Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - BaseHTTPRequestHandler API
            if self.path.split("?", 1)[0] == "/metrics":
                body = registry.render().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            elif self.path == "/healthz":
                body = b"ok\n"
                self.send_response(200)
                self.send_header("Content-Type", "text/plain")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self.send_error(404, "try /metrics")

        def log_message(self, format, *args):  # noqa: A002 - stdlib API
            pass  # scrapes must not spam the server's stdout

    return Handler


class MetricsServer:
    """Serves a registry on ``host:port`` from a daemon thread."""

    def __init__(self, registry: MetricsRegistry | None = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.registry = registry if registry is not None else REGISTRY
        self._httpd = ThreadingHTTPServer((host, port),
                                          _make_handler(self.registry))
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address  # type: ignore[return-value]

    def start(self) -> "MetricsServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-metrics-http", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

A tiny Prometheus-compatible core with no dependencies: metrics are
registered once by name (get-or-create, so any module can declare the
instrument it needs and share it), updates are lock-protected (server
handler threads record concurrently), and the whole registry renders to
the Prometheus text exposition format (0.0.4) for the ``/metrics``
endpoint and the CLI ``metrics`` command.

Histograms use fixed buckets chosen at registration -- cumulative
``le``-labelled counts exactly as Prometheus expects -- so per-type
latency distributions cost one bisect per observation.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Iterable, Optional, Sequence

#: Default latency buckets (seconds): ~50 us to 10 s, log-ish spaced.
LATENCY_BUCKETS = (0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025,
                   0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
                   2.5, 5.0, 10.0)


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Metric:
    """Base: a named family of label-keyed series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _key(self, labels: dict) -> tuple:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        return tuple(str(labels[name]) for name in self.labelnames)

    def _label_suffix(self, key: tuple,
                      extra: Sequence[tuple[str, str]] = ()) -> str:
        pairs = [f'{name}="{_escape_label(value)}"'
                 for name, value in zip(self.labelnames, key)]
        pairs.extend(f'{name}="{_escape_label(value)}"'
                     for name, value in extra)
        return "{" + ",".join(pairs) + "}" if pairs else ""

    def samples(self) -> Iterable[str]:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing value per label combination."""

    kind = "counter"

    def __init__(self, name, help_text, labelnames=()):
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(self._key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())

    def samples(self):
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            yield f"{self.name}{self._label_suffix(key)} " \
                  f"{_format_value(value)}"

    def reset(self):
        with self._lock:
            self._values.clear()


class Gauge(Metric):
    """A value that can go up and down (or be set outright)."""

    kind = "gauge"

    def __init__(self, name, help_text, labelnames=()):
        super().__init__(name, help_text, labelnames)
        self._values: dict[tuple, float] = {}

    def set(self, value: float, **labels) -> None:
        value = float(value)
        if not math.isfinite(value):
            # A NaN/Inf sample would poison the exposition output (and
            # every PromQL expression touching it); drop it silently --
            # gauges are best-effort snapshots, not ledgers.
            return
        key = self._key(labels)
        with self._lock:
            self._values[key] = value

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels) -> float:
        return self._values.get(self._key(labels), 0.0)

    def samples(self):
        with self._lock:
            items = sorted(self._values.items())
        for key, value in items:
            yield f"{self.name}{self._label_suffix(key)} " \
                  f"{_format_value(value)}"

    def reset(self):
        with self._lock:
            self._values.clear()


class Histogram(Metric):
    """Fixed-bucket latency/size distribution per label combination."""

    kind = "histogram"

    def __init__(self, name, help_text, labelnames=(),
                 buckets: Sequence[float] = LATENCY_BUCKETS):
        super().__init__(name, help_text, labelnames)
        buckets = tuple(sorted(buckets))
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = buckets
        # per key: ([count per bucket] + [overflow], sum, count)
        self._series: dict[tuple, list] = {}

    def observe(self, value: float, **labels) -> None:
        if not math.isfinite(value):
            # NaN corrupts _sum forever (NaN + x = NaN) and +/-Inf makes
            # the rendered _sum unusable; ignore such samples outright.
            return
        key = self._key(labels)
        index = bisect.bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * (len(self.buckets) + 1), 0.0, 0]
                self._series[key] = series
            series[0][index] += 1
            series[1] += value
            series[2] += 1

    def count(self, **labels) -> int:
        series = self._series.get(self._key(labels))
        return 0 if series is None else series[2]

    def sum(self, **labels) -> float:
        series = self._series.get(self._key(labels))
        return 0.0 if series is None else series[1]

    def total_count(self) -> int:
        with self._lock:
            return sum(series[2] for series in self._series.values())

    def samples(self):
        with self._lock:
            items = [(key, [list(series[0]), series[1], series[2]])
                     for key, series in sorted(self._series.items())]
        for key, (per_bucket, total, count) in items:
            cumulative = 0
            for bound, bucket_count in zip(self.buckets, per_bucket):
                cumulative += bucket_count
                suffix = self._label_suffix(
                    key, extra=(("le", _format_value(bound)),))
                yield f"{self.name}_bucket{suffix} {cumulative}"
            suffix = self._label_suffix(key, extra=(("le", "+Inf"),))
            yield f"{self.name}_bucket{suffix} {count}"
            plain = self._label_suffix(key)
            yield f"{self.name}_sum{plain} {_format_value(total)}"
            yield f"{self.name}_count{plain} {count}"

    def reset(self):
        with self._lock:
            self._series.clear()


class MetricsRegistry:
    """Name-keyed collection of metrics with get-or-create registration."""

    def __init__(self) -> None:
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name, help_text, labelnames, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, cls) or \
                        metric.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric {name!r} already registered with a "
                        f"different kind or label set")
                return metric
            metric = cls(name, help_text, labelnames, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames)

    def histogram(self, name: str, help_text: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        return self._get_or_create(Histogram, name, help_text, labelnames,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def metrics(self) -> list[Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Zero every series (tests; the instruments stay registered)."""
        for metric in self.metrics():
            metric.reset()

    def render(self) -> str:
        """Prometheus text exposition (format 0.0.4)."""
        lines: list[str] = []
        for metric in self.metrics():
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.samples())
        return "\n".join(lines) + "\n"


#: The process-wide registry every instrument registers into.
REGISTRY = MetricsRegistry()


def render_prometheus(registry: MetricsRegistry = REGISTRY) -> str:
    return registry.render()

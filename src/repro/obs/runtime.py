"""Global observability switch and the sim-metrics bridge.

Observability is **off by default** and the off state must be nearly
free: every instrumented call site guards on the module-level
``enabled`` flag (one attribute load) before building spans, labels, or
log records, so the loopback fast path pays only that check.

``enable()`` flips the flag and configures the JSON log sink;
``disable()`` flips it back (the metrics registry keeps its values so a
scrape after a burst still sees it -- call
:meth:`~repro.obs.metrics.MetricsRegistry.reset` explicitly to zero it).

:func:`record_op` is the bridge the experiment harness shares with
production counters: every :class:`~repro.sim.metrics.OpRecord` the
client's :class:`~repro.sim.metrics.MetricsCollector` accumulates is
also folded into the process-wide registry, so `Table 2`-style harness
numbers and a scraped ``/metrics`` page are two views of one source of
truth.
"""

from __future__ import annotations

from typing import IO, Optional

#: Fast-path flag.  Instrumented modules read this attribute directly
#: (``if obs.enabled:``); never rebind it from outside -- use
#: :func:`enable` / :func:`disable`.
enabled = False


def enable(log_path: Optional[str] = None,
           log_stream: Optional[IO[str]] = None,
           service: str = "repro") -> None:
    """Turn observability on, optionally directing JSON logs to a sink.

    With neither ``log_path`` nor ``log_stream``, spans and events are
    counted in metrics but not logged anywhere.
    """
    global enabled
    from repro.obs import logs
    logs.configure(path=log_path, stream=log_stream, service=service)
    enabled = True


def disable() -> None:
    """Turn observability off; detach the log sink and span exporter."""
    global enabled
    enabled = False
    from repro.obs import logs, spanexport
    logs.configure(path=None, stream=None)
    spanexport.detach()


def is_enabled() -> bool:
    return enabled


def record_op(record) -> None:
    """Fold one :class:`~repro.sim.metrics.OpRecord` into the registry."""
    from repro.obs import instruments as ins
    op = record.op
    ins.OPS_TOTAL.inc(1, op=op)
    ins.OP_SECONDS.observe(record.client_seconds, op=op)
    ins.OP_BYTES.inc(record.bytes_sent, op=op, direction="sent")
    ins.OP_BYTES.inc(record.bytes_received, op=op, direction="received")
    ins.OP_ROUND_TRIPS.inc(record.round_trips, op=op)
    if record.retries:
        ins.OP_RETRIES.inc(record.retries, op=op)

"""Readiness checks and the process-wide stopping flag.

``/healthz`` answers "is the process up?"; ``/readyz`` answers "should a
load balancer send traffic here *right now*?".  The difference is this
registry: subsystems register named probe callables (WAL writable,
group-commit committer thread alive, async event loop responsive), the
HTTP surface runs them on demand, and a single failing probe -- or the
process having begun shutdown -- flips readiness to 503 while liveness
stays green until the listener actually closes.

Probes return ``(ok, detail)`` and must be cheap and non-blocking; a
probe that raises is reported as failing with the exception text rather
than taking the health endpoint down.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Tuple

#: A probe: () -> (ok, human-readable detail).
Check = Callable[[], Tuple[bool, str]]


class HealthRegistry:
    """Named readiness probes plus the graceful-shutdown flag."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._checks: Dict[str, Check] = {}
        self._stopping = False

    # -- registration ----------------------------------------------------

    def register(self, name: str, check: Check) -> None:
        """Add (or replace) a named probe."""
        with self._lock:
            self._checks[name] = check

    def unregister(self, name: str) -> None:
        with self._lock:
            self._checks.pop(name, None)

    # -- shutdown flag ---------------------------------------------------

    @property
    def stopping(self) -> bool:
        return self._stopping

    def set_stopping(self, value: bool = True) -> None:
        """Mark the process as draining: readiness goes 503 immediately."""
        self._stopping = value

    # -- evaluation ------------------------------------------------------

    def run_checks(self) -> dict:
        """Evaluate every probe; never raises.

        Returns ``{"ready": bool, "stopping": bool, "checks": {name:
        {"ok": bool, "detail": str}}}`` -- the exact body ``/readyz``
        serves, so tests and the HTTP layer share one code path.
        """
        with self._lock:
            checks = dict(self._checks)
        results = {}
        ready = not self._stopping
        for name in sorted(checks):
            try:
                ok, detail = checks[name]()
            except Exception as exc:  # probe bugs must not kill /readyz
                ok, detail = False, f"check raised {type(exc).__name__}: {exc}"
            results[name] = {"ok": bool(ok), "detail": str(detail)}
            ready = ready and bool(ok)
        return {"ready": ready, "stopping": self._stopping,
                "checks": results}

    def reset(self) -> None:
        """Drop every probe and clear the stopping flag (tests)."""
        with self._lock:
            self._checks.clear()
        self._stopping = False


#: Process-wide registry the HTTP surface serves.
HEALTH = HealthRegistry()

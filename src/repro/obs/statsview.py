"""Live terminal ops view over a served vault's ``/metrics`` endpoint.

``repro-vault stats <host> <port>`` scrapes the Prometheus text
exposition on an interval and renders the *rates* hiding in the
monotonic counters: ops/s by request type, error rate, WAL fsyncs/s,
and latency quantiles (p50/p95) interpolated from the
``repro_server_handle_seconds`` histogram bucket **deltas** -- i.e. the
latency of the traffic seen this interval, not since process start.

Everything here works on parsed samples, so the same functions power the
CLI dashboard and the tests (no terminal required): :func:`scrape` +
:func:`parse_prometheus` produce a snapshot, :func:`quantile_from_deltas`
does the standard Prometheus ``histogram_quantile`` linear
interpolation, and :func:`render_dashboard` formats one frame.
"""

from __future__ import annotations

import math
import time
import urllib.request
from typing import Mapping, Optional, Sequence

#: A parsed exposition: {(metric_name, ((label, value), ...)): sample}.
Snapshot = Mapping[tuple, float]


def parse_prometheus(text: str) -> dict[tuple, float]:
    """Parse text exposition (0.0.4) into ``{(name, labels): value}``.

    Labels become a sorted tuple of ``(name, value)`` pairs so samples
    compare across scrapes.  Histogram ``_bucket``/``_sum``/``_count``
    series appear under their suffixed names.
    """
    samples: dict[tuple, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            continue
        try:
            value = float(value_part)
        except ValueError:
            continue
        labels: tuple = ()
        name = name_part
        if "{" in name_part:
            name, _, rest = name_part.partition("{")
            rest = rest.rstrip("}")
            pairs = []
            for item in _split_labels(rest):
                label, _, raw = item.partition("=")
                pairs.append((label, raw.strip('"')
                              .replace('\\"', '"').replace("\\\\", "\\")))
            labels = tuple(sorted(pairs))
        samples[(name, labels)] = value
    return samples


def _split_labels(body: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    out, current, in_quotes, escaped = [], [], False, False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
        elif char == "\\":
            current.append(char)
            escaped = True
        elif char == '"':
            current.append(char)
            in_quotes = not in_quotes
        elif char == "," and not in_quotes:
            out.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        out.append("".join(current))
    return out


def scrape(host: str, port: int, timeout: float = 10.0) -> dict[tuple, float]:
    """One parsed scrape of ``http://host:port/metrics``."""
    url = f"http://{host}:{port}/metrics"
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return parse_prometheus(response.read().decode("utf-8"))


# ---------------------------------------------------------------------
# Delta arithmetic
# ---------------------------------------------------------------------

def sum_by_name(snapshot: Snapshot, name: str) -> float:
    """Sum a counter family over every label combination."""
    return sum(value for (metric, _labels), value in snapshot.items()
               if metric == name)


def rate(prev: Snapshot, curr: Snapshot, name: str,
         interval: float) -> float:
    """Per-second increase of a counter family across two scrapes."""
    if interval <= 0:
        return 0.0
    delta = sum_by_name(curr, name) - sum_by_name(prev, name)
    return max(0.0, delta) / interval


def rates_by_label(prev: Snapshot, curr: Snapshot, name: str,
                   label: str, interval: float) -> dict[str, float]:
    """Per-second increases keyed by one label's values (e.g. type)."""
    totals: dict[str, float] = {}
    for sign, snapshot in ((1.0, curr), (-1.0, prev)):
        for (metric, labels), value in snapshot.items():
            if metric != name:
                continue
            key = dict(labels).get(label, "")
            totals[key] = totals.get(key, 0.0) + sign * value
    if interval <= 0:
        return {key: 0.0 for key in totals}
    return {key: max(0.0, delta) / interval
            for key, delta in totals.items()}


def bucket_deltas(prev: Snapshot, curr: Snapshot,
                  name: str) -> list[tuple[float, float]]:
    """Cumulative ``le`` bucket deltas of ``name`` summed over labels.

    Returns ``[(upper_bound, cumulative_delta)]`` sorted by bound with
    ``+Inf`` last -- the input :func:`quantile_from_deltas` expects.
    """
    totals: dict[float, float] = {}
    bucket_name = name + "_bucket"
    for sign, snapshot in ((1.0, curr), (-1.0, prev)):
        for (metric, labels), value in snapshot.items():
            if metric != bucket_name:
                continue
            le = dict(labels).get("le")
            if le is None:
                continue
            bound = math.inf if le == "+Inf" else float(le)
            totals[bound] = totals.get(bound, 0.0) + sign * value
    return sorted((bound, max(0.0, delta))
                  for bound, delta in totals.items())


def quantile_from_deltas(buckets: Sequence[tuple[float, float]],
                         q: float) -> Optional[float]:
    """``histogram_quantile``-style interpolation over bucket deltas.

    ``buckets`` holds cumulative counts per upper bound (``+Inf`` last).
    Returns None when no observations landed in the window.  Within the
    winning bucket the value interpolates linearly from the previous
    bound; a quantile in the ``+Inf`` bucket reports the last finite
    bound (Prometheus's convention).
    """
    if not buckets or not 0.0 <= q <= 1.0:
        return None
    total = buckets[-1][1]
    if total <= 0:
        return None
    target = q * total
    lower_bound = 0.0
    lower_count = 0.0
    for bound, cumulative in buckets:
        if cumulative >= target:
            if math.isinf(bound):
                return lower_bound
            if cumulative == lower_count:
                return bound
            fraction = (target - lower_count) / (cumulative - lower_count)
            return lower_bound + (bound - lower_bound) * fraction
        lower_bound, lower_count = bound, cumulative
    return lower_bound


# ---------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------

def render_dashboard(prev: Snapshot, curr: Snapshot,
                     interval: float) -> str:
    """Format one dashboard frame from two consecutive scrapes."""
    req_rates = rates_by_label(prev, curr, "repro_server_requests_total",
                               "type", interval)
    total_rate = sum(req_rates.values())
    error_rate = rate(prev, curr, "repro_server_errors_total", interval)
    fsync_rate = rate(prev, curr, "repro_wal_fsync_seconds_count",
                      interval)
    deltas = bucket_deltas(prev, curr, "repro_server_handle_seconds")
    p50 = quantile_from_deltas(deltas, 0.50)
    p95 = quantile_from_deltas(deltas, 0.95)

    def _ms(value: Optional[float]) -> str:
        return "--" if value is None else f"{value * 1e3:.2f}ms"

    lines = [
        time.strftime("-- repro-vault stats -- %H:%M:%S "),
        f"ops/s      {total_rate:8.1f}   errors/s {error_rate:8.1f}   "
        f"wal fsync/s {fsync_rate:8.1f}",
        f"handle p50 {_ms(p50):>10}   p95      {_ms(p95):>10}",
    ]
    busy = {op: ops for op, ops in req_rates.items() if ops > 0}
    for op in sorted(busy, key=busy.get, reverse=True):
        lines.append(f"  {op:<24} {busy[op]:8.1f}/s")
    if not busy:
        lines.append("  (no traffic this interval)")
    inflight = sum_by_name(curr, "repro_tcp_inflight_connections")
    replay = sum_by_name(curr, "repro_replay_cache_size")
    lines.append(f"conns inflight {inflight:.0f}   "
                 f"replay-cache {replay:.0f}")
    return "\n".join(lines)


def run_stats(host: str, port: int, *, interval: float = 2.0,
              count: Optional[int] = None, out=None) -> int:
    """Scrape-and-render loop (``count=None`` runs until ctrl-C)."""
    import sys
    if out is None:
        out = sys.stdout
    prev = scrape(host, port)
    frames = 0
    try:
        while count is None or frames < count:
            time.sleep(interval)
            curr = scrape(host, port)
            out.write(render_dashboard(prev, curr, interval) + "\n\n")
            out.flush()
            prev = curr
            frames += 1
    except KeyboardInterrupt:
        pass
    return 0

"""Every metric the system exports, declared in one place.

Instrumented modules import the objects below; the names, labels, and
semantics are documented for operators in ``docs/OBSERVABILITY.md`` --
keep the two in sync.

Naming follows Prometheus conventions: ``_total`` counters, ``_seconds``
histograms with base-unit values, gauges bare.
"""

from __future__ import annotations

from repro.obs.metrics import LATENCY_BUCKETS, REGISTRY

#: Buckets for fsync and checkpoint (disk) latencies: 10 us .. 2.5 s.
DISK_BUCKETS = (0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
                0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                0.5, 1.0, 2.5)

# ---------------------------------------------------------------------
# Channel / RPC (client side)
# ---------------------------------------------------------------------

RPC_SECONDS = REGISTRY.histogram(
    "repro_rpc_seconds",
    "Round-trip latency of one protocol exchange, by message type",
    ("type",), LATENCY_BUCKETS)
RPC_BYTES = REGISTRY.counter(
    "repro_rpc_bytes_total",
    "Protocol bytes moved by the channel (excludes transport framing)",
    ("direction",))
RPC_RETRANSMITS = REGISTRY.counter(
    "repro_rpc_retransmits_total",
    "Requests retransmitted after a timeout or connection failure")
RPC_FAILURES = REGISTRY.counter(
    "repro_rpc_failures_total",
    "Requests that exhausted every transport attempt")

# ---------------------------------------------------------------------
# TCP host (server side)
# ---------------------------------------------------------------------

TCP_CONNECTIONS = REGISTRY.counter(
    "repro_tcp_connections_total",
    "Client connections accepted by the TCP host")
TCP_INFLIGHT = REGISTRY.gauge(
    "repro_tcp_inflight_connections",
    "Currently open client connections")

# ---------------------------------------------------------------------
# Server handlers
# ---------------------------------------------------------------------

SERVER_REQUESTS = REGISTRY.counter(
    "repro_server_requests_total",
    "Requests dispatched to a handler, by message type",
    ("type",))
SERVER_ERRORS = REGISTRY.counter(
    "repro_server_errors_total",
    "ErrorReply responses, by message type and error code",
    ("type", "code"))
SERVER_HANDLE_SECONDS = REGISTRY.histogram(
    "repro_server_handle_seconds",
    "Server-side handling latency, by message type",
    ("type",), LATENCY_BUCKETS)
REPLAY_LOOKUPS = REGISTRY.counter(
    "repro_replay_cache_lookups_total",
    "Idempotency-cache lookups (request-id or per-file commit digest)",
    ("cache",))
REPLAY_HITS = REGISTRY.counter(
    "repro_replay_cache_hits_total",
    "Retransmissions answered from a replay cache instead of re-applied",
    ("cache",))
TREE_VERSION = REGISTRY.gauge(
    "repro_tree_version",
    "Current modulation-tree version per file",
    ("file_id",))

# ---------------------------------------------------------------------
# Sharded serving tier (consistent-hash routed server instances)
# ---------------------------------------------------------------------

SHARD_REQUESTS = REGISTRY.counter(
    "repro_shard_requests_total",
    "Requests handled per shard of the sharded serving tier",
    ("shard",))
SHARD_FILES = REGISTRY.gauge(
    "repro_shard_files",
    "Files resident on each shard (consistent-hash placement)",
    ("shard",))

# ---------------------------------------------------------------------
# Concurrency control (registry / per-file reader-writer locks)
# ---------------------------------------------------------------------

LOCK_WAIT_SECONDS = REGISTRY.histogram(
    "repro_server_lock_wait_seconds",
    "Time spent waiting to acquire a server lock, by scope and mode",
    ("scope", "mode"), LATENCY_BUCKETS)
INFLIGHT_REQUESTS = REGISTRY.gauge(
    "repro_server_inflight_requests",
    "Requests currently holding (or waiting on) a per-file lock",
    ("file_id",))

# ---------------------------------------------------------------------
# Durability: WAL, checkpoints, recovery
# ---------------------------------------------------------------------

WAL_APPENDS = REGISTRY.counter(
    "repro_wal_appends_total",
    "Mutating requests made durable in the write-ahead commit log")
WAL_APPEND_BYTES = REGISTRY.counter(
    "repro_wal_append_bytes_total",
    "Payload bytes appended to the write-ahead commit log")
WAL_FSYNC_SECONDS = REGISTRY.histogram(
    "repro_wal_fsync_seconds",
    "fsync latency of one durable WAL append",
    (), DISK_BUCKETS)
#: Powers of two up to the default group_max_batch (128) and beyond.
BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)
WAL_GROUP_COMMIT_BATCH = REGISTRY.histogram(
    "repro_wal_group_commit_batch",
    "Records coalesced into one group-commit WAL write+fsync",
    (), BATCH_BUCKETS)
WAL_REPLAYED = REGISTRY.counter(
    "repro_wal_replayed_records_total",
    "WAL records re-executed during crash recovery")
WAL_TRUNCATED = REGISTRY.counter(
    "repro_wal_truncated_records_total",
    "Torn/corrupt tail records discarded when opening the WAL")
CHECKPOINTS = REGISTRY.counter(
    "repro_checkpoints_total",
    "Checkpoint images written (WAL folded into the state image)")
CHECKPOINT_SECONDS = REGISTRY.histogram(
    "repro_checkpoint_seconds",
    "Wall time of one checkpoint (image write + WAL reset)",
    (), DISK_BUCKETS)
CHECKPOINT_IMAGE_BYTES = REGISTRY.gauge(
    "repro_checkpoint_image_bytes",
    "Size of the most recent checkpoint image")
RECOVERIES = REGISTRY.counter(
    "repro_recoveries_total",
    "Server recoveries from checkpoint image + WAL replay")
COLD_START_SECONDS = REGISTRY.gauge(
    "repro_server_cold_start_seconds",
    "Wall time of the last recovery (state load + WAL replay)")
RECOVERY_CHECKPOINT_SECONDS = REGISTRY.gauge(
    "repro_recovery_checkpoint_seconds",
    "Checkpoint/engine load portion of the last recovery")
RECOVERY_REPLAY_SECONDS = REGISTRY.gauge(
    "repro_recovery_replay_seconds",
    "WAL replay portion of the last recovery")

# ---------------------------------------------------------------------
# Storage engine (out-of-core tree paging + WAL compaction)
# ---------------------------------------------------------------------

NODE_CACHE = REGISTRY.counter(
    "repro_node_cache_total",
    "Paged tree-node cache lookups, by outcome (hit or miss)",
    ("outcome",))
RESIDENT_NODES = REGISTRY.gauge(
    "repro_resident_nodes",
    "Tree nodes currently held in the paging LRU cache")
STORAGE_FLUSHES = REGISTRY.counter(
    "repro_storage_flushes_total",
    "Incremental dirty-state flushes to the storage engine")
STORAGE_FLUSH_SECONDS = REGISTRY.histogram(
    "repro_storage_flush_seconds",
    "Wall time of one dirty-state flush to the storage engine",
    (), DISK_BUCKETS)
STORAGE_DIRTY_FLUSHED = REGISTRY.counter(
    "repro_storage_dirty_flushed_total",
    "Dirty records (nodes, items, ciphertexts) flushed to the engine")
WAL_COMPACTIONS = REGISTRY.counter(
    "repro_wal_compactions_total",
    "WAL compactions (snapshot marker written, history truncated)")

# ---------------------------------------------------------------------
# Client operations (bridged from sim.metrics OpRecords)
# ---------------------------------------------------------------------

OPS_TOTAL = REGISTRY.counter(
    "repro_ops_total",
    "Completed client operations, by operation",
    ("op",))
OP_SECONDS = REGISTRY.histogram(
    "repro_op_seconds",
    "Client-side latency per operation (excludes server time)",
    ("op",), LATENCY_BUCKETS)
OP_BYTES = REGISTRY.counter(
    "repro_op_bytes_total",
    "Protocol bytes attributed to client operations",
    ("op", "direction"))
OP_ROUND_TRIPS = REGISTRY.counter(
    "repro_op_round_trips_total",
    "Protocol round trips attributed to client operations",
    ("op",))
OP_RETRIES = REGISTRY.counter(
    "repro_op_retries_total",
    "Application-level retries (duplicate modulator / stale state)",
    ("op",))

# ---------------------------------------------------------------------
# Audit trail (tamper-evident deletion evidence)
# ---------------------------------------------------------------------

AUDIT_RECORDS = REGISTRY.counter(
    "repro_audit_records_total",
    "Records appended to the hash-chained audit log")
AUDIT_APPEND_SECONDS = REGISTRY.histogram(
    "repro_audit_append_seconds",
    "Latency of one audit append (chain hash + write + fsync + head)",
    (), DISK_BUCKETS)

# ---------------------------------------------------------------------
# Span export
# ---------------------------------------------------------------------

SPANS_EXPORTED = REGISTRY.counter(
    "repro_spans_exported_total",
    "Spans written to the JSON-lines span-export file, by reason",
    ("reason",))
SPANS_DROPPED = REGISTRY.counter(
    "repro_spans_dropped_total",
    "Finished spans not exported (sampled out or exporter failed)",
    ("reason",))

# ---------------------------------------------------------------------
# Runtime depth gauges (async loop, executor, group commit, replay)
# ---------------------------------------------------------------------

AIO_LOOP_LAG_SECONDS = REGISTRY.gauge(
    "repro_aio_loop_lag_seconds",
    "Scheduling delay of the async host's event loop (monitor probe)")
AIO_EXECUTOR_QUEUE = REGISTRY.gauge(
    "repro_aio_executor_queue_depth",
    "Dispatch jobs waiting for a worker thread in the async host pool")
WAL_GROUP_QUEUE = REGISTRY.gauge(
    "repro_wal_group_commit_queue_depth",
    "Appends waiting for the group-commit committer thread")
REPLAY_CACHE_SIZE = REGISTRY.gauge(
    "repro_replay_cache_size",
    "Entries in the request-id idempotency reply cache")

# ---------------------------------------------------------------------
# Hot-path caches (client chain cache, server view/encode cache)
# ---------------------------------------------------------------------

CLIENT_CACHE_HITS = REGISTRY.counter(
    "repro_client_cache_hits_total",
    "Client chain-cache hits (O(log n) derivation skipped), by operation",
    ("op",))
CLIENT_CACHE_MISSES = REGISTRY.counter(
    "repro_client_cache_misses_total",
    "Client chain-cache misses (full derivation performed), by operation",
    ("op",))
SERVER_VIEW_CACHE = REGISTRY.counter(
    "repro_server_view_cache_total",
    "Server view/encode cache lookups, by outcome (hit or miss)",
    ("outcome",))

"""W3C-style trace context and spans.

A trace follows one logical operation end to end: the client op starts a
root span, every protocol round trip is a child span whose context is
serialised into the message's optional trace trailer
(:mod:`repro.protocol.messages`), and the server adopts that context so
its handler, WAL, and replay-cache records share the client's
``trace_id``.  Ids follow the W3C Trace Context sizes: a 16-byte trace
id and 8-byte span ids.

Spans are contextvar-scoped, so concurrent server handler threads and
interleaved client operations each see their own current span.  With
observability disabled, :func:`span` returns a shared no-op object and
allocates nothing.
"""

from __future__ import annotations

import contextvars
import os
import time
from dataclasses import dataclass
from typing import Optional

from repro.obs import logs, runtime, spanexport


@dataclass(frozen=True)
class TraceContext:
    """The propagated identity of one span within one trace."""

    trace_id: bytes  # 16 bytes
    span_id: bytes   # 8 bytes
    flags: int = 1   # bit 0: sampled (always set by this implementation)

    def __post_init__(self) -> None:
        if len(self.trace_id) != 16:
            raise ValueError("trace_id must be 16 bytes")
        if len(self.span_id) != 8:
            raise ValueError("span_id must be 8 bytes")

    @property
    def trace_id_hex(self) -> str:
        return self.trace_id.hex()

    @property
    def span_id_hex(self) -> str:
        return self.span_id.hex()


_current: contextvars.ContextVar[Optional[TraceContext]] = \
    contextvars.ContextVar("repro-obs-current-span", default=None)


def current() -> Optional[TraceContext]:
    """The context of the innermost active span, if any."""
    return _current.get()


class Span:
    """An active span; use via ``with span(name, **attrs):``."""

    __slots__ = ("name", "attrs", "context", "parent_span_id",
                 "_token", "_start")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs
        parent = _current.get()
        if parent is None:
            trace_id = os.urandom(16)
            self.parent_span_id: Optional[bytes] = None
        else:
            trace_id = parent.trace_id
            self.parent_span_id = parent.span_id
        self.context = TraceContext(trace_id=trace_id,
                                    span_id=os.urandom(8))

    def annotate(self, **attrs) -> None:
        """Attach extra attributes to the span's end record."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self._token = _current.set(self.context)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        _current.reset(self._token)
        record = {
            "event": "span",
            "name": self.name,
            "trace_id": self.context.trace_id_hex,
            "span_id": self.context.span_id_hex,
            "duration_ms": round(duration * 1e3, 6),
            "status": "ok" if exc_type is None else "error",
        }
        if self.parent_span_id is not None:
            record["parent_span_id"] = self.parent_span_id.hex()
        if exc_type is not None:
            record["error"] = f"{exc_type.__name__}: {exc}"
        record.update(self.attrs)
        logs.emit(record)
        exporter = spanexport.active()
        if exporter is not None:
            exporter.export(record)
        return False


class _NullSpan:
    """Shared do-nothing span for the disabled fast path."""

    __slots__ = ()
    context: Optional[TraceContext] = None
    parent_span_id = None

    def annotate(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_SPAN = _NullSpan()


def span(name: str, **attrs):
    """Open a span (a no-op object when observability is disabled)."""
    if not runtime.enabled:
        return NULL_SPAN
    return Span(name, attrs)


class _Scope:
    """Adopt a remote trace context as the current one (server side)."""

    __slots__ = ("_context", "_token")

    def __init__(self, context: Optional[TraceContext]) -> None:
        self._context = context
        self._token = None

    def __enter__(self) -> "_Scope":
        if self._context is not None:
            self._token = _current.set(self._context)
        return self

    def __exit__(self, *exc_info) -> bool:
        if self._token is not None:
            _current.reset(self._token)
        return False


def trace_scope(context: Optional[TraceContext]) -> _Scope:
    """Run a block under a trace context received over the wire.

    ``None`` (untraced message) leaves the current context untouched, so
    spans opened inside start a fresh trace as usual.
    """
    return _Scope(context if runtime.enabled else None)


def log_event(event: str, **attrs) -> None:
    """Emit one point-in-time record under the current trace context."""
    if not runtime.enabled:
        return
    record = {"event": event}
    context = _current.get()
    if context is not None:
        record["trace_id"] = context.trace_id_hex
        record["span_id"] = context.span_id_hex
    record.update(attrs)
    logs.emit(record)

"""Tamper-evident deletion audit trail: an append-only hash chain.

The paper promises *assured* deletion, but assurance that dies with the
process is not evidence: an operator (or a regulator) asking "who
deleted what, when, and under which tree version?" needs a durable
record that a compromised or careless server cannot silently rewrite.
This module provides the dependency-free version of the signed-tombstone
/ verifiable-deletion story: every mutating request the server applies
is appended to a JSON-lines log whose records are SHA-256 hash-chained,
fsync'd, and anchored by a sidecar *head* file, so after the fact

* a **flipped byte** anywhere breaks that record's hash;
* a **spliced-out record** breaks its successor's ``prev`` link (and the
  sequence numbering);
* a **truncated tail** leaves the head file pointing past the end of the
  log.

Record format (one JSON object per line, keys sorted)::

    seq             u64     1-based position in the chain
    ts              float   seconds since the epoch
    op              str     message type name (DeleteCommit, ...)
    request_id      int     protocol idempotency id (0 = none)
    trace_id        str?    32 hex chars when the request carried a trace
    file_id         int?    target file
    items           [int]   item ids the request names (deletions, ...)
    version_before  int?    tree version before the request applied
    version_after   int?    tree version after
    ok              bool    false when the handler answered ErrorReply
    code            int?    ErrorReply code when not ok
    prev            str     hex SHA-256 of the previous record (or genesis)
    hash            str     hex SHA-256 over ``prev || canonical record``

The hash covers the canonical serialisation of every field except
``hash`` itself, prefixed with the previous record's hash, so the log is
a classic hash chain.  The head file (``<log>.head``) holds the sequence
number and hash of the last acknowledged record and is atomically
replaced on every append; a verifier that trusts the head (kept on
separate storage, mirrored, or compared out of band) detects tail
truncation, which a bare chain cannot.

Appends are fsync'd by default (``sync="always"``); ``sync="off"``
skips the barriers for benchmarking the CPU cost of the chain itself.
The audit log is attached explicitly (``CloudServer.attach_audit`` /
``repro-vault serve --audit``) and is independent of the global
observability switch -- evidence should not vanish because metrics were
off.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from typing import Iterator, Optional

from repro.core.errors import ReproError

#: ``prev`` of the first record in a chain.
GENESIS = "0" * 64

#: Fields every record must carry (beyond these, extras are allowed and
#: covered by the hash like everything else).
REQUIRED_FIELDS = ("seq", "ts", "op", "prev", "hash")


class AuditError(ReproError):
    """The audit chain failed verification (tampering or corruption)."""


def head_path_for(path: str) -> str:
    """The sidecar head file anchoring ``path``'s chain tail."""
    return path + ".head"


def _canonical(record: dict) -> bytes:
    """The byte string a record's hash covers (everything but ``hash``)."""
    body = {key: value for key, value in record.items() if key != "hash"}
    return json.dumps(body, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def chain_hash(prev: str, record: dict) -> str:
    """SHA-256 over the previous hash and the record's canonical bytes."""
    return hashlib.sha256(prev.encode("ascii")
                          + _canonical(record)).hexdigest()


class AuditLog:
    """Append-only hash-chained audit log with a durable head anchor.

    Opening an existing log scans it to recover the chain position; a
    torn final line that the head does not acknowledge (the crash landed
    mid-append) is truncated away, exactly like a torn WAL record.
    ``append`` assigns ``seq``/``ts``/``prev``/``hash``, writes the
    line, fsyncs it, and atomically replaces the head file before
    returning -- an acknowledged record is both durable and anchored.
    """

    def __init__(self, path: str, *, sync: str = "always") -> None:
        if sync not in ("always", "off"):
            raise ValueError(f"unknown sync mode {sync!r}")
        self.path = path
        self.head_path = head_path_for(path)
        self.sync = sync
        self._lock = threading.Lock()
        self._seq, self._head_hash = self._recover()
        self._handle = open(path, "a", encoding="utf-8")

    # -- opening ---------------------------------------------------------

    def _recover(self) -> tuple[int, str]:
        """Find the chain tail, truncating an unacknowledged torn line."""
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            return 0, GENESIS
        if not data:
            return 0, GENESIS
        good_end = 0
        seq, head = 0, GENESIS
        pos = 0
        while pos < len(data):
            newline = data.find(b"\n", pos)
            if newline < 0:
                break  # torn final line (no terminator)
            line = data[pos:newline]
            try:
                record = json.loads(line)
                seq = int(record["seq"])
                head = str(record["hash"])
            except (ValueError, KeyError, TypeError):
                break  # unparseable: treat as torn from here on
            pos = newline + 1
            good_end = pos
        head_record = read_head(self.head_path)
        if good_end < len(data):
            if head_record is not None and head_record[0] > seq:
                raise AuditError(
                    f"audit log {self.path!r} ends torn at record {seq} "
                    f"but its head acknowledges {head_record[0]}")
            with open(self.path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                if self.sync == "always":
                    os.fsync(handle.fileno())
        return seq, head

    # -- appending -------------------------------------------------------

    @property
    def seq(self) -> int:
        """Sequence number of the last appended record (0 = empty)."""
        return self._seq

    def append(self, record: dict) -> dict:
        """Chain, persist, and anchor one record; returns it completed.

        ``seq``/``ts``/``prev``/``hash`` are assigned here; the caller
        provides the audit payload (op, ids, versions, outcome).
        """
        start = time.perf_counter()
        with self._lock:
            entry = dict(record)
            entry["seq"] = self._seq + 1
            entry.setdefault("ts", time.time())
            entry["prev"] = self._head_hash
            entry["hash"] = chain_hash(self._head_hash, entry)
            line = json.dumps(entry, sort_keys=True,
                              separators=(",", ":"))
            self._handle.write(line + "\n")
            self._handle.flush()
            if self.sync == "always":
                os.fsync(self._handle.fileno())
            self._write_head(entry["seq"], entry["hash"])
            self._seq = entry["seq"]
            self._head_hash = entry["hash"]
        from repro.obs import runtime as obs
        if obs.enabled:
            from repro.obs import instruments as ins
            ins.AUDIT_RECORDS.inc()
            ins.AUDIT_APPEND_SECONDS.observe(time.perf_counter() - start)
        return entry

    def _write_head(self, seq: int, digest: str) -> None:
        """Atomically replace the head anchor (write temp, fsync, rename)."""
        tmp = self.head_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump({"seq": seq, "hash": digest}, handle,
                      sort_keys=True, separators=(",", ":"))
            handle.write("\n")
            handle.flush()
            if self.sync == "always":
                os.fsync(handle.fileno())
        os.replace(tmp, self.head_path)

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass

    def __enter__(self) -> "AuditLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------
# Reading and verification
# ---------------------------------------------------------------------

def read_head(head_path: str) -> Optional[tuple[int, str]]:
    """The (seq, hash) anchor, or ``None`` when no head file exists."""
    try:
        with open(head_path, encoding="utf-8") as handle:
            head = json.load(handle)
        return int(head["seq"]), str(head["hash"])
    except FileNotFoundError:
        return None
    except (ValueError, KeyError, TypeError) as exc:
        raise AuditError(f"audit head {head_path!r} is unreadable: {exc}")


def iter_records(path: str) -> Iterator[dict]:
    """Yield raw records (no chain checks; see :func:`verify_log`)."""
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except ValueError as exc:
                raise AuditError(
                    f"audit log {path!r} line {lineno} is not valid "
                    f"JSON: {exc}")


def verify_log(path: str, head_path: Optional[str] = None, *,
               require_head: bool = True) -> list[dict]:
    """Verify the whole chain; return its records or raise AuditError.

    Checks, in order: every line parses and carries the required
    fields; sequence numbers run 1..N without gaps; each record's
    ``prev`` equals its predecessor's ``hash`` (genesis first); each
    ``hash`` recomputes from its content; and -- unless ``require_head``
    is off -- the head anchor names a record that exists with the same
    hash, so a truncated tail cannot masquerade as a shorter valid log.
    """
    if head_path is None:
        head_path = head_path_for(path)
    records: list[dict] = []
    prev = GENESIS
    for record in iter_records(path):
        index = len(records) + 1
        missing = [f for f in REQUIRED_FIELDS if f not in record]
        if missing:
            raise AuditError(
                f"record {index} is missing fields {missing}")
        if record["seq"] != index:
            raise AuditError(
                f"sequence break at record {index}: found seq "
                f"{record['seq']} (a record was spliced out or "
                f"reordered)")
        if record["prev"] != prev:
            raise AuditError(
                f"chain break at record {index}: prev {record['prev']!r} "
                f"does not match the preceding hash {prev!r}")
        expected = chain_hash(prev, record)
        if record["hash"] != expected:
            raise AuditError(
                f"hash mismatch at record {index}: content was altered")
        prev = record["hash"]
        records.append(record)

    head = read_head(head_path)
    if head is None:
        if require_head and records:
            raise AuditError(
                f"audit head {head_path!r} is missing; cannot rule out "
                f"a truncated tail")
    else:
        head_seq, head_hash = head
        if head_seq > len(records):
            raise AuditError(
                f"truncated tail: head acknowledges record {head_seq} "
                f"but the log ends at {len(records)}")
        if head_seq >= 1 and records[head_seq - 1]["hash"] != head_hash:
            raise AuditError(
                f"head anchor mismatch at record {head_seq}: the "
                f"anchored hash does not match the log")
    return records


def tail_records(path: str, count: int = 10) -> list[dict]:
    """The last ``count`` raw records (for ``repro-vault audit tail``)."""
    records = list(iter_records(path))
    return records[-count:] if count > 0 else []

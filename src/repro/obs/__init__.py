"""Observability: tracing, structured logs, and metrics.

One subsystem shared by every layer of the deletion protocol:

* :mod:`repro.obs.trace` -- W3C-style trace contexts and spans; span
  contexts ride the optional wire trailer so one ``trace_id`` follows an
  operation client -> TCP -> server -> WAL.
* :mod:`repro.obs.logs` -- JSON-lines structured logging (the span/event
  sink).
* :mod:`repro.obs.metrics` -- counters, gauges, fixed-bucket histograms,
  and Prometheus text rendering; :mod:`repro.obs.instruments` declares
  every exported metric in one place.
* :mod:`repro.obs.httpd` -- the ``/metrics`` + ``/healthz`` +
  ``/readyz`` + ``/statusz`` HTTP surface (imported lazily; use
  :func:`start_metrics_server`).
* :mod:`repro.obs.audit` -- the append-only hash-chained deletion audit
  trail (attached explicitly, independent of the enabled flag).
* :mod:`repro.obs.spanexport` -- JSON-lines span export with sampling
  and a slow-span override.
* :mod:`repro.obs.health` -- named readiness probes backing ``/readyz``.
* :mod:`repro.obs.statsview` -- scrape parsing + the live CLI dashboard.

Everything is **disabled by default**: call
:func:`repro.obs.runtime.enable` (also re-exported here) to turn it on.
Instrumented fast paths guard on ``runtime.enabled`` so the off state
costs one attribute check per call site.
"""

from repro.obs import runtime
from repro.obs.health import HEALTH, HealthRegistry
from repro.obs.metrics import (LATENCY_BUCKETS, REGISTRY, Counter, Gauge,
                               Histogram, MetricsRegistry,
                               render_prometheus)
from repro.obs.runtime import disable, enable, is_enabled
from repro.obs.trace import (TraceContext, current, log_event, span,
                             trace_scope)

__all__ = [
    "runtime", "enable", "disable", "is_enabled",
    "TraceContext", "current", "span", "trace_scope", "log_event",
    "REGISTRY", "MetricsRegistry", "Counter", "Gauge", "Histogram",
    "LATENCY_BUCKETS", "render_prometheus", "start_metrics_server",
    "HEALTH", "HealthRegistry",
]


def start_metrics_server(port: int = 0, host: str = "127.0.0.1",
                         registry: MetricsRegistry | None = None):
    """Start a :class:`~repro.obs.httpd.MetricsServer` (lazy import)."""
    from repro.obs.httpd import MetricsServer
    return MetricsServer(registry, host=host, port=port).start()

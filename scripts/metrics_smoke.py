#!/usr/bin/env python
"""CI smoke test for the observability stack.

Starts ``repro-vault serve --durable --audit --trace-export
--metrics-port`` as a subprocess, drives a put and an assured deletion
over real TCP, forces a request-id replay-cache hit with a deliberate
duplicate request, scrapes ``/metrics``, and asserts the WAL-fsync and
replay-cache series are present and non-zero.  It then checks the
operational-evidence surface the same serve produced:

* ``/readyz`` answers 200 while the server is healthy;
* ``repro-vault audit verify`` walks the hash chain the deletion
  extended (and counts at least one Delete record);
* the span export contains the deletion's ``server.handle`` span.

The audit log (+ head) and the span file are copied into
``smoke-artifacts/`` so CI can upload an independently verifiable
deletion record from every run.

With ``--shards N`` the smoke instead serves the vault as N
consistent-hash shards (``serve --shards N --durable --audit``), drives
routed traffic through ``OutsourcedFileSystem.connect_sharded``, and
asserts the sharded observability contract: ``/readyz`` lists one
``shard-<i>`` probe per shard, the aggregated ``/metrics`` scrape's
per-shard ``repro_shard_requests_total`` series sum to the global
``repro_server_requests_total``, and every shard's audit chain
verifies independently.

Exits non-zero (with the scrape dumped to stderr) on any failure, so it
can gate CI directly:

    python scripts/metrics_smoke.py
    python scripts/metrics_smoke.py --shards 3
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")


def cli_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_cli(workdir: str, *args: str, stdin: str | None = None) -> str:
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        cwd=workdir, env=cli_env(), input=stdin,
        capture_output=True, text=True, timeout=120)
    if result.returncode != 0:
        raise SystemExit(f"cli {args} failed:\n{result.stderr}")
    return result.stdout


def read_until(stream, pattern: str, deadline: float) -> re.Match:
    lines = []
    while time.time() < deadline:
        line = stream.readline()
        if not line:
            time.sleep(0.05)
            continue
        lines.append(line)
        match = re.search(pattern, line)
        if match:
            return match
    raise SystemExit(f"server never printed {pattern!r}; saw: {lines}")


def metric_value(text: str, name: str, labels: str = "") -> float:
    pattern = re.escape(name) + re.escape(labels) + r" ([0-9.eE+-]+|\+Inf)$"
    total = 0.0
    found = False
    for line in text.splitlines():
        match = re.match(pattern if labels else
                         re.escape(name) + r"(?:\{[^}]*\})? ([0-9.eE+-]+)$",
                         line)
        if match:
            total += float(match.group(1))
            found = True
    if not found:
        raise SystemExit(f"metric {name}{labels} missing from scrape")
    return total


def sharded_main(shards: int) -> int:
    """Sharded-tier smoke: routed traffic, aggregated scrape, per-shard
    readiness and audit chains."""
    workdir = tempfile.mkdtemp(prefix="repro-smoke-shards-")
    run_cli(workdir, "init")
    run_cli(workdir, "put", "docs/adopted.txt", stdin="alpha\nbeta\n")

    serve = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--shards", str(shards), "--durable", "--audit",
         "--metrics-port", "0"],
        cwd=workdir, env=cli_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    try:
        deadline = time.time() + 30
        metrics_match = read_until(serve.stdout,
                                   r"metrics on http://([0-9.]+):(\d+)",
                                   deadline)
        metrics_addr = (metrics_match.group(1), int(metrics_match.group(2)))
        addresses = []
        for shard_id in range(shards):
            match = read_until(
                serve.stdout,
                rf"serving shard {shard_id} on ([0-9.]+):(\d+)", deadline)
            addresses.append((match.group(1), int(match.group(2))))
        read_until(serve.stdout, r"serving vault across", deadline)

        # Routed traffic: files spread across the ring, plus an assured
        # deletion (id bases disjoint from the adopted vault's files).
        sys.path.insert(0, SRC)
        from repro.fs.filesystem import OutsourcedFileSystem

        fs = OutsourcedFileSystem.connect_sharded(
            addresses, meta_id_base=900, file_id_base=5_000_000)
        touched_shards = set()
        for index in range(2 * shards):
            name = f"net/routed-{index}.txt"
            fs.create_file(name, [b"r0", b"r1", b"r2"])
            touched_shards.add(fs.shard_of(name))
        fs.open("net/routed-0.txt").delete_record(1)
        assert fs.open("net/routed-0.txt").read_all() == [b"r0", b"r2"]

        base = f"http://{metrics_addr[0]}:{metrics_addr[1]}"
        with urllib.request.urlopen(base + "/readyz",
                                    timeout=10) as response:
            ready = json.loads(response.read().decode("utf-8"))
            assert response.status == 200, ready
        assert ready["ready"] is True, ready
        expected_probes = {f"shard-{i}" for i in range(shards)}
        assert expected_probes <= set(ready["checks"]), ready

        with urllib.request.urlopen(base + "/metrics",
                                    timeout=10) as response:
            text = response.read().decode("utf-8")
        try:
            # Each touched shard's labelled series must be present...
            for shard_id in sorted(touched_shards):
                assert metric_value(text, "repro_shard_requests_total",
                                    f'{{shard="{shard_id}"}}') > 0
            # ...and the per-shard series must SUM to the global server
            # request counter: the aggregated scrape loses no traffic.
            shard_total = metric_value(text, "repro_shard_requests_total")
            server_total = metric_value(text, "repro_server_requests_total")
            appends = metric_value(text, "repro_wal_appends_total")
        except SystemExit:
            sys.stderr.write(text)
            raise
        assert shard_total == server_total, (shard_total, server_total)
        assert appends > 0, f"no WAL appends recorded: {appends}"
    finally:
        serve.terminate()
        try:
            serve.wait(timeout=10)
        except subprocess.TimeoutExpired:
            serve.kill()

    # Every shard's audit chain verifies independently; the deletion is
    # recorded on exactly the shard that owns the file.
    deletions = 0
    for shard_id in range(shards):
        log = os.path.join(workdir, ".repro-vault", "shards",
                           f"shard-{shard_id}", "audit.log")
        report = json.loads(run_cli(workdir, "audit", "verify",
                                    "--log", log))
        assert report["ok"] is True, (shard_id, report)
        deletions += report["deletions"]
    assert deletions >= 1, "deletion not audited on any shard"

    print(f"sharded metrics smoke OK: {shards} shards "
          f"({len(touched_shards)} touched), "
          f"{int(shard_total)} routed requests == {int(server_total)} "
          f"server requests, {int(appends)} WAL appends, "
          f"{deletions} audited deletion(s)")
    return 0


def main() -> int:
    workdir = tempfile.mkdtemp(prefix="repro-smoke-")
    run_cli(workdir, "init")
    run_cli(workdir, "put", "docs/smoke.txt",
            stdin="alpha\nbeta\ngamma\ndelta\n")

    span_path = os.path.join(workdir, "spans.jsonl")
    serve = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--durable",
         "--audit", "--trace-export", span_path,
         "--metrics-port", "0"],
        cwd=workdir, env=cli_env(), stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT, text=True)
    try:
        deadline = time.time() + 30
        metrics_match = read_until(serve.stdout,
                                   r"metrics on http://([0-9.]+):(\d+)",
                                   deadline)
        serve_match = read_until(serve.stdout,
                                 r"serving vault on ([0-9.]+):(\d+)",
                                 deadline)
        metrics_addr = (metrics_match.group(1), int(metrics_match.group(2)))
        server_addr = (serve_match.group(1), int(serve_match.group(2)))

        # Put and assuredly delete over real TCP.
        sys.path.insert(0, SRC)
        from repro.fs.filesystem import OutsourcedFileSystem
        from repro.protocol import messages as msg
        from repro.protocol.tcp import TcpChannel
        from repro.protocol.wire import WireContext
        from repro.core.params import Params

        fs = OutsourcedFileSystem.connect(server_addr)
        handle = fs.create_file("net/data.txt", [b"r0", b"r1", b"r2"])
        handle.delete_record(1)

        # Force a request-id replay hit: send the same mutating request
        # twice over a raw channel (the second is answered from cache).
        ctx = WireContext(modulator_width=Params().modulator_size)
        with TcpChannel(server_addr, ctx) as channel:
            probe = msg.DeleteFileRequest(file_id=999_999_999,
                                          request_id=0xC0FFEE)
            first = channel.request(probe)
            second = channel.request(probe)
            assert type(first) is type(second), (first, second)

        base = f"http://{metrics_addr[0]}:{metrics_addr[1]}"
        with urllib.request.urlopen(base + "/readyz",
                                    timeout=10) as response:
            ready = json.loads(response.read().decode("utf-8"))
            assert response.status == 200, ready
        assert ready["ready"] is True, ready
        assert "wal" in ready["checks"], ready

        with urllib.request.urlopen(base + "/metrics",
                                    timeout=10) as response:
            text = response.read().decode("utf-8")

        try:
            fsyncs = metric_value(text, "repro_wal_appends_total")
            fsync_count = metric_value(text, "repro_wal_fsync_seconds_count")
            hits = metric_value(text, "repro_replay_cache_hits_total",
                                '{cache="request_id"}')
            requests = metric_value(text, "repro_server_requests_total")
        except SystemExit:
            sys.stderr.write(text)
            raise
        assert fsyncs > 0, f"no WAL appends recorded: {fsyncs}"
        assert fsync_count > 0, f"no WAL fsyncs recorded: {fsync_count}"
        assert hits > 0, f"no replay-cache hits recorded: {hits}"
        assert requests > 0, f"no server requests recorded: {requests}"
    finally:
        serve.terminate()
        try:
            serve.wait(timeout=10)
        except subprocess.TimeoutExpired:
            serve.kill()

    # ---- operational evidence, checked after the server is gone -----
    # (the audit log fsyncs per append and the span export flushes per
    # record, so both survive the hard stop intact)

    report = json.loads(run_cli(workdir, "audit", "verify"))
    assert report["ok"] is True, report
    assert report["records"] > 0, report
    assert report["deletions"] >= 1, f"deletion not audited: {report}"

    with open(span_path, encoding="utf-8") as handle:
        spans = [json.loads(line) for line in handle if line.strip()]
    deletes = [s for s in spans
               if s.get("name") == "server.handle"
               and s.get("type") == "DeleteCommit"]
    assert deletes, f"no server.handle DeleteCommit span exported; " \
                    f"saw {sorted({s.get('name') for s in spans})}"
    assert all(len(s["trace_id"]) == 32 for s in deletes)

    # Leave the evidence behind for CI to upload.
    artifacts = os.path.join(REPO, "smoke-artifacts")
    os.makedirs(artifacts, exist_ok=True)
    audit_log = os.path.join(workdir, ".repro-vault", "audit.log")
    for source in (audit_log, audit_log + ".head", span_path):
        shutil.copy(source, artifacts)

    print(f"metrics smoke OK: {int(requests)} requests, "
          f"{int(fsyncs)} WAL appends, {int(hits)} replay hit(s), "
          f"{report['records']} audit records "
          f"({report['deletions']} deletions), "
          f"{len(spans)} spans exported")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=1,
                        help="smoke the sharded serving tier with N "
                             "shards (default: single-server smoke)")
    cli_args = parser.parse_args()
    if cli_args.shards > 1:
        raise SystemExit(sharded_main(cli_args.shards))
    raise SystemExit(main())
